"""The multithreaded processor: burst interpreter + round-robin scheduler.

One :class:`Processor` holds ``M`` thread contexts and executes the current
thread's instructions in *bursts* — sequences of cycles that end at a
context-switch point (model dependent), at thread halt, at the engine's
burst limit, or when the thread touches a register whose shared load is
still in flight.

Design notes for the interpreter loop (``_burst``):

* Opcode dispatch is a range-partitioned if/elif chain over the
  ``Op`` integer values (declaration order groups related opcodes), with
  the hottest groups first.  This keeps the per-instruction overhead low
  enough to simulate millions of instructions per experiment in pure
  Python.
* Run lengths, the central measured quantity of the paper, are busy
  cycles between *taken* context switches; burst boundaries that are mere
  simulation artifacts (burst limit, waiting for an already-arrived
  response event) do not end a run.
* Context switches are free (0 cycles) for opcode-identified switch
  points (switch-on-load, explicit-switch, conditional-switch) and cost
  ``switch_cost`` pipeline-flush cycles for switch-on-miss, as in the
  paper's Section 3.
"""

from __future__ import annotations

import math
from heapq import heappush
from typing import List, Optional, TYPE_CHECKING

from repro.faults.plan import RetryLimitExceeded
from repro.isa.instruction import instr_reads, instr_writes
from repro.isa.opcodes import Op
from repro.machine.cache import Cache
from repro.machine.models import SwitchModel
from repro.machine.thread import ThreadContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.simulator import Simulator

# Hoisted opcode integer constants (Op is an IntEnum; comparisons against
# plain ints run at C speed).
_ADD = Op.ADD.value
_SUB = Op.SUB.value
_MUL = Op.MUL.value
_DIV = Op.DIV.value
_REM = Op.REM.value
_AND = Op.AND.value
_OR = Op.OR.value
_XOR = Op.XOR.value
_SLL = Op.SLL.value
_SRL = Op.SRL.value
_SRA = Op.SRA.value
_SLT = Op.SLT.value
_SLE = Op.SLE.value
_SEQ = Op.SEQ.value
_SNE = Op.SNE.value
_ADDI = Op.ADDI.value
_MULI = Op.MULI.value
_ANDI = Op.ANDI.value
_ORI = Op.ORI.value
_XORI = Op.XORI.value
_SLLI = Op.SLLI.value
_SRLI = Op.SRLI.value
_SLTI = Op.SLTI.value
_LI = Op.LI.value
_MOV = Op.MOV.value
_FADD = Op.FADD.value
_FSUB = Op.FSUB.value
_FMUL = Op.FMUL.value
_FDIV = Op.FDIV.value
_FNEG = Op.FNEG.value
_FABS = Op.FABS.value
_FSQRT = Op.FSQRT.value
_FMOV = Op.FMOV.value
_FLI = Op.FLI.value
_FSLT = Op.FSLT.value
_FSLE = Op.FSLE.value
_FSEQ = Op.FSEQ.value
_CVTIF = Op.CVTIF.value
_CVTFI = Op.CVTFI.value
_BEQ = Op.BEQ.value
_BNE = Op.BNE.value
_BLT = Op.BLT.value
_BLE = Op.BLE.value
_BGT = Op.BGT.value
_BGE = Op.BGE.value
_J = Op.J.value
_JAL = Op.JAL.value
_JR = Op.JR.value
_NOP = Op.NOP.value
_HALT = Op.HALT.value
_LWL = Op.LWL.value
_SWL = Op.SWL.value
_LDL = Op.LDL.value
_SDL = Op.SDL.value
_LWS = Op.LWS.value
_SWS = Op.SWS.value
_LDS = Op.LDS.value
_SDS = Op.SDS.value
_FAA = Op.FAA.value
_SWITCH = Op.SWITCH.value

# Compact model codes for the interpreter.
M_IDEAL = 0
M_SOL = 1
M_USE = 2
M_EXPLICIT = 3
M_MISS = 4
M_USE_MISS = 5
M_COND = 6
M_SEC = 7

_MODEL_CODES = {
    SwitchModel.IDEAL: M_IDEAL,
    SwitchModel.SWITCH_ON_LOAD: M_SOL,
    SwitchModel.SWITCH_ON_USE: M_USE,
    SwitchModel.EXPLICIT_SWITCH: M_EXPLICIT,
    SwitchModel.SWITCH_ON_MISS: M_MISS,
    SwitchModel.SWITCH_ON_USE_MISS: M_USE_MISS,
    SwitchModel.CONDITIONAL_SWITCH: M_COND,
    SwitchModel.SWITCH_EVERY_CYCLE: M_SEC,
}

# Burst outcomes.
OUT_SWITCH = 0  # a context switch was taken: record the run, rotate threads
OUT_PAUSE = 1  # simulation artifact: same thread continues (no switch)
OUT_YIELD = 2  # rotate threads without a model-level switch (IDEAL fairness)
OUT_HALT = 3


class ExecutionError(Exception):
    """An instruction faulted (bad address, divide by zero, ...)."""


class Processor:
    """One multithreaded processor."""

    def __init__(
        self,
        sim: "Simulator",
        pid: int,
        threads: List[ThreadContext],
        cache: Optional[Cache],
    ):
        self.sim = sim
        self.pid = pid
        self.threads = threads
        self.cache = cache
        #: Outstanding line fills: line number -> install time (MSHRs).
        self.mshr = {}
        #: Write-combining buffer state: last written line and cycle.
        self.wc_line = -1
        self.wc_time = -(1 << 30)
        self.cur = 0
        self.busy_cycles = 0
        self.idle_cycles = 0

        config = sim.config
        self.model = _MODEL_CODES[config.model]
        self.burst_limit = config.burst_limit
        # switch-every-cycle is implemented as one-cycle switch-on-load
        # bursts (see _burst_sec).  Fold that rewrite in here, once,
        # instead of swapping model/burst_limit around every burst.
        self._sec = self.model == M_SEC
        if self._sec:
            self.model = M_SOL
            self.burst_limit = 1
        self.forced_interval = config.forced_switch_interval
        self.switch_cost = config.switch_cost if config.model.pays_flush_cost else 0
        self.code = sim.program.instructions
        #: Section 5.2 estimator (list of per-thread OneLineCache or None).
        self.oracle = sim.oracle_caches

    # -- event entry points -----------------------------------------------------

    def dispatch_event(self, now: int, _arg=None) -> None:
        """Heap event: run one burst of the current thread."""
        thread = self.threads[self.cur]
        if self._sec:
            outcome, t_end = self._burst_sec(thread, now)
        else:
            outcome, t_end = self._burst(thread, now)
        sim = self.sim
        tracer = sim.tracer
        if tracer is not None:
            tracer.burst(now, self.pid, thread.tid, t_end, outcome)
        if outcome == OUT_PAUSE:
            # Inlined sim.schedule (priority 2): one dispatch per burst
            # makes the method-call overhead measurable.
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap, (t_end, 2, seq, self.dispatch_event, None))
        else:
            self._schedule_next(t_end)

    def _schedule_next(self, t: int) -> None:
        """Strict round-robin: advance to the next live thread and wait for
        it if necessary (optimal under ordered delivery, Section 3)."""
        threads = self.threads
        count = len(threads)
        index = self.cur + 1
        if index == count:
            index = 0
        for _ in range(count):
            thread = threads[index]
            if not thread.halted:
                self.cur = index
                when = thread.resume_time
                if when < t:
                    when = t
                self.idle_cycles += when - t
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                heappush(sim._heap, (when, 2, seq, self.dispatch_event, None))
                return
            index += 1
            if index == count:
                index = 0
        # All threads on this processor have halted; the processor stops.

    def nack(
        self, time: int, tid: int, txn: int, ftxn: int, attempt: int, hint: int = 0
    ) -> int:
        """Account one lost reply (NACK) and return the retry backoff.

        Capped exponential backoff in cycles — ``min(base << (attempt-1),
        cap)`` — bounds livelock under bursty loss while keeping early
        retries cheap.  Raises :class:`~repro.faults.plan.
        RetryLimitExceeded` once the attempt budget is spent, so a
        pathological loss rate surfaces as a diagnosable failure instead
        of an eventual ``SimulationTimeout``.  Cold path by construction:
        only lost replies ever reach it.

        *hint*, when non-zero, is the absolute cycle at which the NACKing
        component is scheduled to return to service (component-lifecycle
        outages know their own repair schedule); the backoff stretches to
        at least reach it, so a long outage costs one retry instead of
        the whole attempt budget.
        """
        faults = self.sim.fault_config
        if attempt >= faults.max_retries:
            raise RetryLimitExceeded(
                f"transaction {ftxn} still unanswered after {attempt} attempts "
                f"(processor {self.pid}, thread {tid}) [{self.sim.describe()}]"
            )
        backoff = faults.backoff_base << (attempt - 1)
        if backoff > faults.backoff_cap:
            backoff = faults.backoff_cap
        if hint > time + backoff:
            backoff = hint - time
        stats = self.sim.stats
        stats.nacks += 1
        stats.backoff_cycles += backoff
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.mem_nack(time, self.pid, tid, txn, attempt, backoff)
        return backoff

    # -- the interpreter ----------------------------------------------------------

    def _burst(self, thread: ThreadContext, now: int):
        """Execute the current thread until a burst-ending condition.

        Returns ``(outcome, t_end)``; updates thread and statistics.
        """
        sim = self.sim
        stats = sim.stats
        shared = sim.shared
        code = self.code
        regs = thread.regs
        local = thread.local
        inflight = thread.inflight
        cache = self.cache
        model = self.model
        forced = self.forced_interval
        pid = self.pid
        # The whole cost of disabled tracing on this hot loop: one local
        # load + None check per instruction (see repro.obs.tracer).
        tracer = sim.tracer

        t = now
        deadline = now + self.burst_limit
        pc = thread.pc
        run0 = thread.run_cycles - now  # run length = run0 + t at any point
        n_instr = 0

        outcome = -1
        resume = t
        flush = 0

        while True:
            if t >= deadline:
                outcome = OUT_YIELD if model == M_IDEAL else OUT_PAUSE
                resume = t
                break

            ins = code[pc]
            op = ins.op

            # Split-phase scoreboard: does this instruction read — or
            # overwrite (WAW) — a register whose shared load is still in
            # flight?  Reads need the value; writes must stall so the
            # late response cannot clobber the newer result.
            if inflight:
                blocked = -1
                for reg in instr_reads(ins):
                    ready = inflight.get(reg)
                    if ready is not None and ready > blocked:
                        blocked = ready
                for reg in instr_writes(ins):
                    ready = inflight.get(reg)
                    if ready is not None and ready > blocked:
                        blocked = ready
                if blocked >= 0:
                    if blocked <= t:
                        # The response has arrived in simulated time but its
                        # event is still queued: re-dispatch at t (artifact).
                        outcome = OUT_PAUSE
                        resume = t
                        break
                    # A genuine wait on an in-flight value.
                    if model != M_USE and model != M_USE_MISS:
                        stats.implicit_use_switches += 1
                    outcome = OUT_SWITCH
                    resume = blocked
                    break

            if tracer is not None:
                tracer.instr(t, pid, thread.tid, pc, op)

            if op <= 25:  # integer ALU / LI / MOV
                if op == _ADDI:
                    value = regs[ins.rs1] + ins.imm
                elif op == _ADD:
                    value = regs[ins.rs1] + regs[ins.rs2]
                elif op == _LI:
                    value = ins.imm
                elif op == _MOV:
                    value = regs[ins.rs1]
                elif op == _SUB:
                    value = regs[ins.rs1] - regs[ins.rs2]
                elif op == _SLT:
                    value = 1 if regs[ins.rs1] < regs[ins.rs2] else 0
                elif op == _SLE:
                    value = 1 if regs[ins.rs1] <= regs[ins.rs2] else 0
                elif op == _SEQ:
                    value = 1 if regs[ins.rs1] == regs[ins.rs2] else 0
                elif op == _SNE:
                    value = 1 if regs[ins.rs1] != regs[ins.rs2] else 0
                elif op == _SLTI:
                    value = 1 if regs[ins.rs1] < ins.imm else 0
                elif op == _MUL:
                    value = regs[ins.rs1] * regs[ins.rs2]
                elif op == _MULI:
                    value = regs[ins.rs1] * ins.imm
                elif op == _DIV or op == _REM:
                    dividend = regs[ins.rs1]
                    divisor = regs[ins.rs2]
                    if divisor == 0:
                        raise ExecutionError(
                            f"pc={pc}: integer divide by zero ({ins.to_asm()})"
                        )
                    quotient = abs(dividend) // abs(divisor)
                    if (dividend < 0) != (divisor < 0):
                        quotient = -quotient
                    value = (
                        quotient if op == _DIV else dividend - quotient * divisor
                    )
                elif op == _AND:
                    value = regs[ins.rs1] & regs[ins.rs2]
                elif op == _OR:
                    value = regs[ins.rs1] | regs[ins.rs2]
                elif op == _XOR:
                    value = regs[ins.rs1] ^ regs[ins.rs2]
                elif op == _SLL:
                    value = regs[ins.rs1] << regs[ins.rs2]
                elif op == _SRL or op == _SRA:
                    value = regs[ins.rs1] >> regs[ins.rs2]
                elif op == _ANDI:
                    value = regs[ins.rs1] & ins.imm
                elif op == _ORI:
                    value = regs[ins.rs1] | ins.imm
                elif op == _XORI:
                    value = regs[ins.rs1] ^ ins.imm
                elif op == _SLLI:
                    value = regs[ins.rs1] << ins.imm
                else:  # _SRLI
                    value = regs[ins.rs1] >> ins.imm
                if ins.rd:
                    regs[ins.rd] = value
                t += ins.cost
                pc += 1
                n_instr += 1

            elif op <= 39:  # floating point
                if op == _FADD:
                    value = regs[ins.rs1] + regs[ins.rs2]
                elif op == _FSUB:
                    value = regs[ins.rs1] - regs[ins.rs2]
                elif op == _FMUL:
                    value = regs[ins.rs1] * regs[ins.rs2]
                elif op == _FDIV:
                    divisor = regs[ins.rs2]
                    if divisor == 0:
                        raise ExecutionError(
                            f"pc={pc}: float divide by zero ({ins.to_asm()})"
                        )
                    value = regs[ins.rs1] / divisor
                elif op == _FNEG:
                    value = -regs[ins.rs1]
                elif op == _FABS:
                    value = abs(regs[ins.rs1])
                elif op == _FSQRT:
                    operand = regs[ins.rs1]
                    if operand < 0:
                        raise ExecutionError(
                            f"pc={pc}: sqrt of negative value ({ins.to_asm()})"
                        )
                    value = math.sqrt(operand)
                elif op == _FMOV:
                    value = regs[ins.rs1]
                elif op == _FLI:
                    value = ins.imm
                elif op == _FSLT:
                    value = 1 if regs[ins.rs1] < regs[ins.rs2] else 0
                elif op == _FSLE:
                    value = 1 if regs[ins.rs1] <= regs[ins.rs2] else 0
                elif op == _FSEQ:
                    value = 1 if regs[ins.rs1] == regs[ins.rs2] else 0
                elif op == _CVTIF:
                    value = float(regs[ins.rs1])
                else:  # _CVTFI
                    value = math.trunc(regs[ins.rs1])
                if ins.rd:
                    regs[ins.rd] = value
                t += ins.cost
                pc += 1
                n_instr += 1

            elif op <= 45:  # conditional branches
                a = regs[ins.rs1]
                b = regs[ins.rs2]
                if op == _BNE:
                    taken = a != b
                elif op == _BEQ:
                    taken = a == b
                elif op == _BLT:
                    taken = a < b
                elif op == _BGE:
                    taken = a >= b
                elif op == _BLE:
                    taken = a <= b
                else:  # _BGT
                    taken = a > b
                pc = ins.target if taken else pc + 1
                t += 1
                n_instr += 1

            elif op <= 50:  # J / JAL / JR / NOP / HALT
                if op == _J:
                    pc = ins.target
                elif op == _JAL:
                    regs[31] = pc + 1
                    pc = ins.target
                elif op == _JR:
                    pc = regs[ins.rs1]
                elif op == _NOP:
                    pc += 1
                else:  # _HALT
                    outcome = OUT_HALT
                    resume = t
                    break
                t += 1
                n_instr += 1

            elif op <= 54:  # local memory (serviced locally, never switches)
                addr = regs[ins.rs1] + ins.imm
                if op == _LWL:
                    if ins.rd:
                        regs[ins.rd] = local[addr]
                elif op == _SWL:
                    local[addr] = regs[ins.rs2]
                elif op == _LDL:
                    if ins.rd:
                        regs[ins.rd] = local[addr]
                        regs[ins.rd + 1] = local[addr + 1]
                else:  # _SDL
                    local[addr] = regs[ins.rs2]
                    local[addr + 1] = regs[ins.rs2 + 1]
                t += ins.cost
                pc += 1
                n_instr += 1

            elif op <= 59:  # shared memory
                addr = regs[ins.rs1] + ins.imm

                if model == M_IDEAL:  # zero latency: execute eagerly
                    if op == _LWS:
                        if ins.rd:
                            regs[ins.rd] = shared[addr]
                    elif op == _SWS:
                        shared[addr] = regs[ins.rs2]
                    elif op == _LDS:
                        if ins.rd:
                            regs[ins.rd] = shared[addr]
                            regs[ins.rd + 1] = shared[addr + 1]
                    elif op == _SDS:
                        shared[addr] = regs[ins.rs2]
                        shared[addr + 1] = regs[ins.rs2 + 1]
                    else:  # _FAA
                        old = shared[addr]
                        shared[addr] = old + regs[ins.rs2]
                        if ins.rd:
                            regs[ins.rd] = old
                    t += ins.cost
                    pc += 1
                    n_instr += 1

                elif op == _SWS or op == _SDS:  # fire-and-forget stores
                    if op == _SWS:
                        values = (regs[ins.rs2],)
                    else:
                        values = (regs[ins.rs2], regs[ins.rs2 + 1])
                    if cache is not None:
                        # Keep our own copy coherent with our own stores
                        # (program order); remote copies — and, at apply
                        # time, this one too — are invalidated at memory.
                        for offset, word in enumerate(values):
                            cache.update_if_present(addr + offset, word)
                        # Write-combining: follow-on stores into the line
                        # written moments ago ride the open transaction.
                        line_words = cache.line_words
                        first = addr // line_words
                        last_word = (addr + len(values) - 1) // line_words
                        combined = (
                            first == self.wc_line
                            and last_word == first
                            and t - self.wc_time <= 8
                        )
                        self.wc_line = last_word
                        self.wc_time = t
                        sim.write_through(
                            t, addr, values, pid, ins.sync, combined=combined
                        )
                    else:
                        sim.mem_store(t, addr, values, ins.sync, thread.tid)
                    t += ins.cost
                    pc += 1
                    n_instr += 1

                elif op == _FAA or cache is None:  # uncached value-returning
                    if (
                        self.oracle is not None
                        and op != _FAA
                        and not ins.sync
                        and self.oracle[thread.tid].access(addr)
                    ):
                        # Section 5.2 estimator: this load touches the same
                        # line as the thread's preceding shared reference, so
                        # an inter-block compiler could have grouped it there;
                        # model it as already prefetched (no transaction).
                        if ins.rd:
                            regs[ins.rd] = shared[addr]
                            if op == _LDS:
                                regs[ins.rd + 1] = shared[addr + 1]
                        t += ins.cost
                        pc += 1
                        n_instr += 1
                        continue
                    if op == _FAA:
                        if cache is not None:
                            # F&A mutates memory directly: drop our own copy
                            # now so later own loads refetch (their memory
                            # read is ordered after the F&A's apply).
                            cache.invalidate(addr // cache.line_words)
                        sim.mem_faa(t, addr, thread, ins.rd, regs[ins.rs2], ins.sync)
                    else:
                        sim.mem_load(
                            t, addr, 2 if op == _LDS else 1, thread, ins.rd, ins.sync
                        )
                    t += ins.cost
                    pc += 1
                    n_instr += 1
                    if model == M_SOL or (model == M_MISS and op == _FAA):
                        outcome = OUT_SWITCH
                        resume = thread.pending_until
                        flush = self.switch_cost
                        break
                    # EXPLICIT / USE / COND / USE_MISS: keep executing; the
                    # switch decision happens at SWITCH or at first use.

                else:  # cached load (LWS / LDS)
                    nwords = 2 if op == _LDS else 1
                    first = cache.lookup(addr)
                    hit = first is not None
                    second = None
                    if hit and nwords == 2:
                        second = cache.lookup(addr + 1)
                        hit = second is not None
                    if hit:
                        if ins.rd:
                            regs[ins.rd] = first
                            if nwords == 2:
                                regs[ins.rd + 1] = second
                        if tracer is not None:
                            tracer.cache_hit(t, pid, thread.tid, addr)
                        if not ins.sync:
                            stats.cache_hits += 1
                        t += ins.cost
                        pc += 1
                        n_instr += 1
                        # Starvation guard for models without SWITCH opcodes:
                        # force a rotation after forced_interval busy cycles.
                        if (
                            (model == M_MISS or model == M_USE_MISS)
                            and forced
                            and run0 + t >= forced
                        ):
                            stats.forced_switches += 1
                            if tracer is not None:
                                tracer.switch_forced(t, pid, thread.tid)
                            outcome = OUT_SWITCH
                            resume = t
                            break
                    else:
                        issued = sim.cached_load(
                            t, addr, nwords, thread, ins.rd, pid, ins.sync
                        )
                        if tracer is not None:
                            if issued:
                                tracer.cache_miss(t, pid, thread.tid, addr)
                            else:
                                tracer.cache_merge(t, pid, thread.tid, addr)
                        if not ins.sync:
                            stats.cache_misses += 1
                            if not issued:
                                stats.cache_merged += 1
                        t += ins.cost
                        pc += 1
                        n_instr += 1
                        if model == M_MISS:
                            outcome = OUT_SWITCH
                            resume = thread.pending_until
                            flush = self.switch_cost
                            break

            else:  # SWITCH
                t += 1
                pc += 1
                n_instr += 1
                if model == M_COND or (model == M_EXPLICIT and self.oracle is not None):
                    # conditional-switch — or explicit-switch under the
                    # Section 5.2 estimator, where oracle-grouped loads
                    # leave nothing outstanding and the switch is skipped.
                    if thread.pending_until > t:
                        outcome = OUT_SWITCH
                        resume = thread.pending_until
                        break
                    if forced and run0 + t >= forced:
                        stats.forced_switches += 1
                        if tracer is not None:
                            tracer.switch_forced(t, pid, thread.tid)
                        outcome = OUT_SWITCH
                        resume = t
                        break
                    stats.skipped_switches += 1
                    if tracer is not None:
                        tracer.switch_skipped(t, pid, thread.tid)
                elif model == M_EXPLICIT or model == M_SOL or model == M_USE:
                    outcome = OUT_SWITCH
                    resume = thread.pending_until
                    if resume < t:
                        resume = t
                    break
                # IDEAL / MISS / USE_MISS ignore stray SWITCH opcodes.

        # -- burst bookkeeping ----------------------------------------------------
        elapsed = t - now
        self.busy_cycles += elapsed
        stats.busy_cycles += elapsed
        stats.instructions += n_instr
        thread.pc = pc

        if outcome == OUT_SWITCH:
            stats.switches += 1
            run = run0 + t  # inlined stats.record_run
            if run > 0:
                stats.run_lengths[run] += 1
            thread.run_cycles = 0
            thread.resume_time = resume
            if tracer is not None:
                tracer.switch_taken(t, pid, thread.tid, resume)
            if flush:
                stats.switch_overhead_cycles += flush
                return OUT_SWITCH, t + flush
            return OUT_SWITCH, t
        if outcome == OUT_HALT:
            stats.record_run(run0 + t)
            thread.run_cycles = 0
            thread.halted = True
            thread.halt_time = t
            sim.thread_halted(t)
            if tracer is not None:
                tracer.thread_halt(t, pid, thread.tid)
            return OUT_HALT, t
        # PAUSE / YIELD: the run continues across the boundary.
        thread.run_cycles = run0 + t
        thread.resume_time = resume
        return outcome, t

    def _burst_sec(self, thread: ThreadContext, now: int):
        """switch-every-cycle: one instruction, then rotate (HEP style).

        Implemented by running the main interpreter with a one-cycle
        deadline so exactly one instruction executes, then forcing a
        rotation.  Shared loads behave like switch-on-load.  (The
        model/burst-limit rewrite happened once, in ``__init__``.)
        """
        outcome, t_end = self._burst(thread, now)
        if outcome == OUT_PAUSE:
            # The single instruction completed without a model switch:
            # convert the artificial pause into a taken rotation.
            stats = self.sim.stats
            stats.switches += 1
            run = thread.run_cycles  # inlined stats.record_run
            if run > 0:
                stats.run_lengths[run] += 1
            thread.run_cycles = 0
            thread.resume_time = t_end
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.switch_taken(t_end, self.pid, thread.tid, t_end)
            return OUT_SWITCH, t_end
        return outcome, t_end

