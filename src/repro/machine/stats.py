"""Simulation statistics: everything the paper's tables are computed from.

One :class:`SimStats` instance aggregates a whole machine run.  The
quantities mirror the paper's measurements:

* **run lengths** — busy cycles between *taken* context switches
  (Tables 2 and 4); kept as an exact ``Counter`` so any binning can be
  derived later.
* **switch counts** — taken, skipped (conditional-switch hits), forced
  (the 200-cycle cap of Section 6.2) and implicit (a use of an in-flight
  register under a model without use-switching, i.e. a grouping-pass bug).
* **network traffic** — per-:class:`~repro.machine.network.MsgKind`
  message counts and forward/return bits, with spin-synchronisation
  traffic tallied separately for exclusion (Section 6.1).
* **cache behaviour** — hits and misses for the cached models.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List

from repro.machine.network import MsgKind, transaction_bits
from repro.machine.config import NetworkConfig

_KINDS = tuple(MsgKind)


class SimStats:
    """Mutable statistics accumulator for one simulation."""

    def __init__(self, num_processors: int, network: NetworkConfig, line_words: int = 8):
        self.num_processors = num_processors
        self._network = network
        self._line_words = line_words

        self.instructions = 0
        self.busy_cycles = 0
        self.per_proc_busy: List[int] = [0] * num_processors
        self.per_proc_idle: List[int] = [0] * num_processors

        self.switches = 0
        self.skipped_switches = 0
        self.forced_switches = 0
        self.implicit_use_switches = 0
        self.switch_overhead_cycles = 0
        self.run_lengths: Counter = Counter()

        # Backing store for :attr:`msg_counts`: a dense list indexed by
        # ``MsgKind.index`` plus precomputed per-kind transaction bits,
        # so the per-message hot path does no enum hashing and no
        # ``transaction_bits`` call.
        self._msg_counts: List[int] = [0] * len(_KINDS)
        self._bits = [transaction_bits(kind, network, line_words)
                      for kind in _KINDS]
        self.fwd_bits = 0
        self.ret_bits = 0
        self.sync_msgs = 0
        self.sync_bits = 0

        self.cache_hits = 0
        self.cache_misses = 0
        #: Subset of cache_misses that merged onto an in-flight fill
        #: (MSHR secondary misses — they wait but move no extra bits).
        self.cache_merged = 0
        # Section 5.2 one-line-cache estimator counters.
        self.oracle_hits = 0
        self.oracle_misses = 0

        # Fault-injection / NACK-retry protocol counters (all zero on a
        # fault-free run — the zero-perturbation golden test relies on it).
        #: Value-returning transactions issued (first attempts only;
        #: retries re-count network traffic but not issues).
        self.mem_issued = 0
        #: Value-returning transactions whose reply was finally delivered.
        #: Conservation law (repro.check): ``mem_issued == mem_completed``.
        self.mem_completed = 0
        self.replies_dropped = 0
        self.replies_delayed = 0
        self.nacks = 0
        self.retries = 0
        self.backoff_cycles = 0
        #: Fetch-and-Add retries answered from the idempotent-replay
        #: buffer (the add was *not* applied twice).
        self.faa_replays = 0

        #: Component-lifecycle availability ledger (repro.faults.
        #: lifecycle): one dict per component with uptime/degraded/
        #: downtime/repair cycle totals and failure/repair transition
        #: counts over ``[0, wall_cycles)``.  Empty unless a lifecycle
        #: is configured.  Conservation law (repro.check):
        #: ``uptime + downtime + repair == wall_cycles`` per component.
        self.component_availability: List[Dict] = []

        self.wall_cycles = 0
        self.halted_threads = 0

    # -- recording ------------------------------------------------------------

    def record_run(self, length: int) -> None:
        """A thread just gave up the processor after *length* busy cycles."""
        if length > 0:
            self.run_lengths[length] += 1

    def count_message(self, kind: MsgKind, sync: bool) -> None:
        """Charge one transaction's forward+return bits."""
        fwd, ret = self._bits[kind.index]
        if sync:
            self.sync_msgs += 1
            self.sync_bits += fwd + ret
            return
        self._msg_counts[kind.index] += 1
        self.fwd_bits += fwd
        self.ret_bits += ret

    @property
    def msg_counts(self) -> Counter:
        """Per-:class:`MsgKind` message counts (zero counts omitted)."""
        counts = self._msg_counts
        return Counter(
            {kind: counts[kind.index] for kind in _KINDS if counts[kind.index]}
        )

    @msg_counts.setter
    def msg_counts(self, value) -> None:
        counts = [0] * len(_KINDS)
        for kind, count in dict(value).items():
            counts[kind.index] = count
        self._msg_counts = counts

    # -- derived quantities -----------------------------------------------------

    @property
    def total_runs(self) -> int:
        return sum(self.run_lengths.values())

    @property
    def mean_run_length(self) -> float:
        """Mean busy cycles between taken context switches."""
        runs = self.total_runs
        if not runs:
            return float(self.busy_cycles)
        total = sum(length * count for length, count in self.run_lengths.items())
        return total / runs

    def run_length_fractions(self, bins: List[int]) -> Dict[str, float]:
        """Fraction of runs falling in each bin.

        *bins* are inclusive upper bounds, e.g. ``[1, 2, 5, 10, 100]``
        yields keys ``'1'``, ``'2'``, ``'3-5'``, ``'6-10'``, ``'11-100'``,
        ``'>100'``.
        """
        runs = self.total_runs
        result: Dict[str, float] = {}
        lower = 1
        for upper in bins:
            key = str(upper) if upper == lower else f"{lower}-{upper}"
            count = sum(
                qty for length, qty in self.run_lengths.items() if lower <= length <= upper
            )
            result[key] = count / runs if runs else 0.0
            lower = upper + 1
        tail = sum(qty for length, qty in self.run_lengths.items() if length >= lower)
        result[f">{bins[-1]}"] = tail / runs if runs else 0.0
        return result

    @property
    def hit_rate(self) -> float:
        """Shared-load cache hit rate (0.0 when no cache present)."""
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    @property
    def oracle_hit_rate(self) -> float:
        """One-line-cache hit rate of the Section 5.2 estimator: the
        fraction of shared loads that an inter-block compiler could have
        grouped with their preceding reference."""
        accesses = self.oracle_hits + self.oracle_misses
        return self.oracle_hits / accesses if accesses else 0.0

    @property
    def lifecycle_failures(self) -> int:
        """Component hard failures across the run (0 = no lifecycle)."""
        return sum(comp["failures"] for comp in self.component_availability)

    @property
    def lifecycle_repairs(self) -> int:
        """Components returned to service across the run."""
        return sum(comp["repairs"] for comp in self.component_availability)

    @property
    def lifecycle_degraded_cycles(self) -> int:
        """Cycles any component spent serving in a DEGRADED stage."""
        return sum(comp["degraded_cycles"] for comp in self.component_availability)

    @property
    def lifecycle_downtime_cycles(self) -> int:
        """Cycles any component spent FAILED or REPAIRING (not serving)."""
        return sum(
            comp["downtime_cycles"] + comp["repair_cycles"]
            for comp in self.component_availability
        )

    def mttf(self) -> float:
        """Mean cycles to failure: serving time per hard failure
        (0.0 when nothing ever failed)."""
        failures = self.lifecycle_failures
        if not failures:
            return 0.0
        uptime = sum(comp["uptime_cycles"] for comp in self.component_availability)
        return uptime / failures

    def mttr(self) -> float:
        """Mean cycles to repair: non-serving time per completed repair
        (0.0 when nothing was ever repaired)."""
        repairs = self.lifecycle_repairs
        if not repairs:
            return 0.0
        return self.lifecycle_downtime_cycles / repairs

    @property
    def total_bits(self) -> int:
        """Network bits moved, excluding spin-synchronisation traffic."""
        return self.fwd_bits + self.ret_bits

    def bandwidth_bits_per_cycle(self) -> float:
        """Mean per-processor network bandwidth in bits/cycle — the
        quantity of the paper's bandwidth table (forward + return)."""
        if not self.wall_cycles:
            return 0.0
        return self.total_bits / (self.wall_cycles * self.num_processors)

    def grouping_factor(self) -> float:
        """Mean shared loads issued per taken context switch ("level of
        grouping" in Table 4).  Uses value-returning transactions only."""
        counts = self._msg_counts
        loads = (
            counts[MsgKind.READ.index]
            + counts[MsgKind.READ2.index]
            + counts[MsgKind.FAA.index]
            + self.cache_hits
            + self.cache_misses
            + self.oracle_hits
        )
        if not self.switches:
            return float(loads)
        return loads / self.switches

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe dictionary capturing every counter; inverse of
        :meth:`from_dict`.  Run lengths are keyed by the (stringified)
        length, message counts by the :class:`MsgKind` name."""
        return {
            "num_processors": self.num_processors,
            "network": dataclasses.asdict(self._network),
            "line_words": self._line_words,
            "instructions": self.instructions,
            "busy_cycles": self.busy_cycles,
            "per_proc_busy": list(self.per_proc_busy),
            "per_proc_idle": list(self.per_proc_idle),
            "switches": self.switches,
            "skipped_switches": self.skipped_switches,
            "forced_switches": self.forced_switches,
            "implicit_use_switches": self.implicit_use_switches,
            "switch_overhead_cycles": self.switch_overhead_cycles,
            "run_lengths": {str(length): count
                            for length, count in sorted(self.run_lengths.items())},
            "msg_counts": {kind.name: count
                           for kind, count in sorted(self.msg_counts.items(),
                                                     key=lambda item: item[0].name)},
            "fwd_bits": self.fwd_bits,
            "ret_bits": self.ret_bits,
            "sync_msgs": self.sync_msgs,
            "sync_bits": self.sync_bits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_merged": self.cache_merged,
            "oracle_hits": self.oracle_hits,
            "oracle_misses": self.oracle_misses,
            "mem_issued": self.mem_issued,
            "mem_completed": self.mem_completed,
            "replies_dropped": self.replies_dropped,
            "replies_delayed": self.replies_delayed,
            "nacks": self.nacks,
            "retries": self.retries,
            "backoff_cycles": self.backoff_cycles,
            "faa_replays": self.faa_replays,
            "component_availability": [
                dict(comp) for comp in self.component_availability
            ],
            "wall_cycles": self.wall_cycles,
            "halted_threads": self.halted_threads,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        stats = cls(
            data["num_processors"],
            NetworkConfig(**data["network"]),
            data.get("line_words", 8),
        )
        for field in (
            "instructions", "busy_cycles", "switches", "skipped_switches",
            "forced_switches", "implicit_use_switches", "switch_overhead_cycles",
            "fwd_bits", "ret_bits", "sync_msgs", "sync_bits",
            "cache_hits", "cache_misses", "cache_merged",
            "oracle_hits", "oracle_misses", "wall_cycles", "halted_threads",
        ):
            setattr(stats, field, data[field])
        for field in (
            "mem_issued", "mem_completed", "replies_dropped", "replies_delayed",
            "nacks", "retries", "backoff_cycles", "faa_replays",
        ):  # absent in pre-fault-injection payloads
            setattr(stats, field, data.get(field, 0))
        # Absent in pre-lifecycle payloads.
        stats.component_availability = [
            dict(comp) for comp in data.get("component_availability", [])
        ]
        stats.per_proc_busy = list(data["per_proc_busy"])
        stats.per_proc_idle = list(data["per_proc_idle"])
        stats.run_lengths = Counter(
            {int(length): count for length, count in data["run_lengths"].items()}
        )
        stats.msg_counts = Counter(
            {MsgKind.from_name(name): count
             for name, count in data["msg_counts"].items()}
        )
        return stats

    def to_metrics(self, registry=None):
        """Export the aggregate counters as a
        :class:`~repro.obs.metrics.MetricsRegistry` — the same report
        machinery the tracer feeds, with tracing completely disabled."""
        from repro.obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        registry.counter("instr").inc(self.instructions)
        registry.counter("switch.taken").inc(self.switches)
        registry.counter("switch.skipped").inc(self.skipped_switches)
        registry.counter("switch.forced").inc(self.forced_switches)
        registry.counter("cache.hit").inc(self.cache_hits)
        registry.counter("cache.miss").inc(self.cache_misses)
        registry.counter("cache.merge").inc(self.cache_merged)
        for kind, count in sorted(self.msg_counts.items(), key=lambda kv: kv[0].name):
            registry.counter(f"mem.issue.{kind.name}").inc(count)
        if self.nacks or self.retries or self.replies_delayed or self.faa_replays:
            registry.counter("mem.nack").inc(self.nacks)
            registry.counter("mem.retry").inc(self.retries)
            registry.counter("mem.reply.delayed").inc(self.replies_delayed)
            registry.counter("mem.backoff.cycles").inc(self.backoff_cycles)
            registry.counter("faa.replay").inc(self.faa_replays)
        if self.component_availability:
            registry.counter("lifecycle.failures").inc(self.lifecycle_failures)
            registry.counter("lifecycle.repairs").inc(self.lifecycle_repairs)
            registry.counter("lifecycle.degraded.cycles").inc(
                self.lifecycle_degraded_cycles
            )
            registry.counter("lifecycle.downtime.cycles").inc(
                self.lifecycle_downtime_cycles
            )
            for comp in self.component_availability:
                labels = {"component": str(comp["component"])}
                registry.counter(
                    "lifecycle.component.uptime.cycles", labels=labels
                ).inc(comp["uptime_cycles"])
                registry.counter(
                    "lifecycle.component.downtime.cycles", labels=labels
                ).inc(comp["downtime_cycles"] + comp["repair_cycles"])
                registry.counter(
                    "lifecycle.component.failures", labels=labels
                ).inc(comp["failures"])
        run_length = registry.histogram("run.length")
        for length, count in sorted(self.run_lengths.items()):
            for _ in range(count):
                run_length.observe(length)
        return registry

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline numbers (handy for tests/CLI)."""
        return {
            "instructions": self.instructions,
            "busy_cycles": self.busy_cycles,
            "wall_cycles": self.wall_cycles,
            "switches": self.switches,
            "mean_run_length": self.mean_run_length,
            "hit_rate": self.hit_rate,
            "bandwidth_bits_per_cycle": self.bandwidth_bits_per_cycle(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimStats wall={self.wall_cycles} busy={self.busy_cycles} "
            f"switches={self.switches} mean_run={self.mean_run_length:.1f}>"
        )
