"""The multithreading model taxonomy of the paper's Figure 1.

Each model answers one question: *when does a thread give up the
processor?*

===================  ========================================================
model                context switch happens on...
===================  ========================================================
IDEAL                never — the paper's zero-latency upper-bound machine
SWITCH_EVERY_CYCLE   every instruction (HEP / MASA style)
SWITCH_ON_LOAD       every load from shared memory (Section 4 baseline)
SWITCH_ON_USE        the first *use* of a register whose shared load is
                     still in flight (split-phase load/use)
EXPLICIT_SWITCH      an explicit SWITCH instruction inserted by the
                     compiler after each group of shared loads (Section 5)
SWITCH_ON_MISS       shared loads that miss in the cache (Weber & Gupta,
                     ALEWIFE, DASH style; pays a pipeline-flush cost)
SWITCH_ON_USE_MISS   a use whose datum missed and has not yet returned
CONDITIONAL_SWITCH   a SWITCH instruction, taken only when a preceding
                     load missed in the cache (Section 6)
===================  ========================================================
"""

from __future__ import annotations

import enum


class SwitchModel(enum.Enum):
    """Context-switch policy of a multithreaded processor."""

    IDEAL = "ideal"
    SWITCH_EVERY_CYCLE = "switch-every-cycle"
    SWITCH_ON_LOAD = "switch-on-load"
    SWITCH_ON_USE = "switch-on-use"
    EXPLICIT_SWITCH = "explicit-switch"
    SWITCH_ON_MISS = "switch-on-miss"
    SWITCH_ON_USE_MISS = "switch-on-use-miss"
    CONDITIONAL_SWITCH = "conditional-switch"

    @property
    def uses_cache(self) -> bool:
        """Models that place a coherent cache in front of shared memory."""
        return self in (
            SwitchModel.SWITCH_ON_MISS,
            SwitchModel.SWITCH_ON_USE_MISS,
            SwitchModel.CONDITIONAL_SWITCH,
        )

    @property
    def wants_grouped_code(self) -> bool:
        """Models whose code should be run through the grouping
        post-processor (Section 5.1)."""
        return self in (
            SwitchModel.EXPLICIT_SWITCH,
            SwitchModel.CONDITIONAL_SWITCH,
            SwitchModel.SWITCH_ON_USE,
            SwitchModel.SWITCH_ON_USE_MISS,
        )

    @property
    def wants_switch_instructions(self) -> bool:
        """Models that execute explicit SWITCH opcodes (others run code
        with SWITCH stripped, or never see it)."""
        return self in (
            SwitchModel.EXPLICIT_SWITCH,
            SwitchModel.CONDITIONAL_SWITCH,
        )

    @property
    def is_split_phase(self) -> bool:
        """Models that context switch on the *use* of an in-flight value."""
        return self in (
            SwitchModel.SWITCH_ON_USE,
            SwitchModel.SWITCH_ON_USE_MISS,
        )

    @property
    def pays_flush_cost(self) -> bool:
        """Models that detect the switch too late in the pipeline and pay
        ``MachineConfig.switch_cost`` wasted cycles per taken switch
        (Section 3: miss-detected switches cancel in-flight instructions)."""
        return self is SwitchModel.SWITCH_ON_MISS

    @classmethod
    def parse(cls, text: "str | SwitchModel") -> "SwitchModel":
        """Resolve a user-facing model spelling to a member.

        Accepts the canonical value (``"explicit-switch"``), the member
        name in any case (``"EXPLICIT_SWITCH"``), underscores for dashes,
        and the paper's short names (``"eswitch"``, ``"cswitch"``,
        ``"hep"``, ``"sol"``).
        """
        if isinstance(text, cls):
            return text
        normalized = text.strip().lower().replace("_", "-")
        alias = _MODEL_ALIASES.get(normalized)
        if alias is not None:
            return alias
        try:
            return cls(normalized)
        except ValueError:
            known = ", ".join(
                sorted([m.value for m in cls] + list(_MODEL_ALIASES))
            )
            raise ValueError(
                f"unknown switch model {text!r} (known: {known})"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Short spellings from the paper's prose and figures.
_MODEL_ALIASES = {
    "eswitch": SwitchModel.EXPLICIT_SWITCH,
    "cswitch": SwitchModel.CONDITIONAL_SWITCH,
    "hep": SwitchModel.SWITCH_EVERY_CYCLE,
    "sol": SwitchModel.SWITCH_ON_LOAD,
    "sou": SwitchModel.SWITCH_ON_USE,
    "som": SwitchModel.SWITCH_ON_MISS,
}
