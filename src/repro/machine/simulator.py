"""Discrete-event simulation engine.

The engine exploits the paper's machine model: processors interact *only*
through timestamped shared-memory transactions (constant latency, ordered
delivery), so each processor can execute a short *burst* of instructions
as one event, and memory-side effects are applied by separate events in
global timestamp order.  A shared load issued at cycle *t* reads memory
when the request arrives (``t + latency/2``) and the value is usable by
the thread at ``t + latency`` — exactly the paper's round-trip model.

Event kinds:

* processor dispatch — run one burst of the processor's current thread;
* memory events — apply a load/store/Fetch-and-Add (or, on the cached
  machine, a line fill / write-through / invalidation) at its arrival
  time.

Because bursts are bounded (``MachineConfig.burst_limit`` cycles) and all
cross-processor communication flows through memory events, the interleaving
error of burst-atomicity is bounded by one burst, and synchronisation
operations (Fetch-and-Add) are always exact: they execute at the memory, in
timestamp order.
"""

from __future__ import annotations

import heapq
from heapq import heappush
from typing import Callable, List, Optional, Sequence

from repro.faults import build_fault_plan, build_latency_model
from repro.faults.lifecycle import DEGRADED, FAILED, HEALTHY, build_lifecycle_plan
from repro.isa.program import Program
from repro.machine.cache import Cache
from repro.machine.config import MachineConfig
from repro.machine.directory import Directory
from repro.machine.network import MsgKind
from repro.machine.stats import SimStats
from repro.machine.thread import ThreadContext
from repro.obs.tracer import TimelineTracer, Tracer


class SimulationTimeout(Exception):
    """The simulation exceeded ``MachineConfig.max_cycles`` (livelock or a
    runaway program)."""


class SimulationResult:
    """Outcome of one simulation run."""

    def __init__(
        self,
        wall_cycles: int,
        stats: SimStats,
        shared: List,
        threads: List[ThreadContext],
        config: MachineConfig,
        program: Program,
    ):
        self.wall_cycles = wall_cycles
        self.stats = stats
        self.shared = shared
        self.threads = threads
        self.config = config
        self.program = program

    def efficiency(self, single_thread_cycles: int) -> float:
        """Paper's metric: ``speedup / processors`` where speedup is
        relative to a single zero-latency processor needing
        *single_thread_cycles*."""
        if not self.wall_cycles:
            return 0.0
        speedup = single_thread_cycles / self.wall_cycles
        return speedup / self.config.num_processors

    # -- serialization ---------------------------------------------------------

    def to_dict(self, include_shared: bool = False) -> dict:
        """JSON-safe dictionary; inverse of :meth:`from_dict`.

        Thread contexts and the program are *not* serialized — a restored
        result carries everything the analysis layer consumes (wall
        cycles, the full :class:`~repro.machine.stats.SimStats`, the
        machine configuration) but ``threads`` is empty and ``program``
        is ``None``.  Pass ``include_shared=True`` to also keep the final
        shared-memory image (useful for correctness archaeology; omitted
        by default because it can dominate the cache-entry size).
        """
        out = {
            "wall_cycles": self.wall_cycles,
            "stats": self.stats.to_dict(),
            "config": self.config.to_dict(),
        }
        if include_shared:
            out["shared"] = list(self.shared)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        return cls(
            wall_cycles=data["wall_cycles"],
            stats=SimStats.from_dict(data["stats"]),
            shared=list(data.get("shared", [])),
            threads=[],
            config=MachineConfig.from_dict(data["config"]),
            program=None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimulationResult wall={self.wall_cycles} "
            f"P={self.config.num_processors} M={self.config.threads_per_processor}>"
        )


class Simulator:
    """One configured machine executing one SPMD program.

    *thread_registers* supplies the initial register values for each
    thread (index = thread id); threads are assigned to processors in
    blocks, thread ``i`` to processor ``i // threads_per_processor``.
    """

    def __init__(
        self,
        program: Program,
        config: MachineConfig,
        shared: List,
        thread_registers: Sequence[dict],
        local_size: int = 0,
        tracer: Optional[Tracer] = None,
        backend: Optional[str] = None,
    ):
        if not program.finalized:
            raise ValueError("program must be finalized before simulation")
        if len(thread_registers) != config.total_threads:
            raise ValueError(
                f"need initial registers for {config.total_threads} threads, "
                f"got {len(thread_registers)}"
            )
        self.program = program
        self.config = config
        self.shared = shared
        line_words = config.cache.line_words if config.cache else 8
        self.stats = SimStats(config.num_processors, config.network, line_words)
        self.latency = config.latency
        self.half_latency = config.latency // 2

        self.threads: List[ThreadContext] = []
        for tid, regs in enumerate(thread_registers):
            thread = ThreadContext(tid, local_size)
            for slot, value in regs.items():
                thread.regs[slot] = value
            self.threads.append(thread)

        from repro.machine.processor import Processor  # circular-import guard
        from repro.machine.cache import OneLineCache
        from repro.jit import resolve_backend

        self.directory: Optional[Directory] = None
        if config.model.uses_cache:
            self.directory = Directory(config.num_processors)

        #: Section 5.2 estimator: one-line cache per thread.
        self.oracle_caches = None
        if config.interblock_oracle:
            self.oracle_caches = [
                OneLineCache(config.oracle_line_words) for _ in self.threads
            ]

        #: The probe sink (None = tracing off).  The disabled-overhead
        #: contract: a tracer whose ``enabled`` flag is false is dropped
        #: *here*, so every hot path pays exactly one ``is not None``
        #: check and nothing else when tracing is off.  Normalized before
        #: the processors exist: the compiled backend specializes its
        #: generated code on whether a tracer is attached.
        if tracer is not None and not tracer.enabled:
            tracer = None
        if tracer is None and config.record_timeline:
            tracer = TimelineTracer()
        self.tracer: Optional[Tracer] = tracer

        #: Which execution backend runs the bursts.  Backends are
        #: bit-identical by contract, so this is *not* part of
        #: MachineConfig (and never reaches config keys, golden fixtures
        #: or cache payloads) — it only selects the processor class.
        self._heap: List = []
        self._seq = 0
        self.now = 0
        self.live_threads = len(self.threads)
        self.last_halt_time = 0
        self._jitter_range = config.latency_jitter
        #: Fault injection (repro.faults).  Both stay ``None`` for the
        #: constant-latency, fault-free machine, keeping every memory
        #: path on its original arithmetic — the zero-perturbation
        #: contract mirrors the tracer's: one ``is None`` check per issue.
        #: Resolved before the processors exist: the compiled backend
        #: specializes its generated code on whether a plan is active.
        self.fault_config = config.faults
        self._latency_model = None
        self._fault_plan = None
        if config.faults is not None:
            self._latency_model = build_latency_model(config.faults, config.latency)
            self._fault_plan = build_fault_plan(config.faults)
        #: Component degradation-and-repair lifecycles (repro.faults.
        #: lifecycle).  ``_lifecycle`` exists whenever one is configured
        #: (availability stats are always reported then);
        #: ``_lifecycle_active`` is non-None only when components can
        #: actually transition — that is what perturbs round trips and
        #: NACKs requests, and build_fault_plan guarantees a plan exists
        #: then, so all lifecycle service decisions ride the faulty
        #: delivery paths (interpreter and compiled alike).
        self._lifecycle = build_lifecycle_plan(config.faults)
        self._lifecycle_active = (
            self._lifecycle
            if self._lifecycle is not None and not self._lifecycle.static
            else None
        )
        #: Constant round trip for the common (no fault model, no jitter)
        #: machine, or None when _round_trip must actually be consulted —
        #: saves two Python calls per memory transaction on hot paths.
        self._fixed_rt = (
            self.latency
            if self._latency_model is None
            and not self._jitter_range
            and self._lifecycle_active is None
            else None
        )
        #: Hoisted cache-line geometry for per-transaction arithmetic.
        self._line_words = line_words
        #: Fault-transaction sequence (ids feed the FaultPlan hashes).
        self._txn_seq = 0
        #: Fetch-and-Add idempotent-replay buffer: fault txn id -> the
        #: old value returned by the (single) application at memory.
        #: Populated only when an FAA reply is lost, drained on delivery.
        self._faa_replay = {}

        self.backend = resolve_backend(backend)
        if self.backend == "compiled":
            from repro.jit.driver import CompiledProcessor as processor_cls
        else:
            processor_cls = Processor

        self.processors: List[Processor] = []
        per = config.threads_per_processor
        for pid in range(config.num_processors):
            group = self.threads[pid * per : (pid + 1) * per]
            cache = Cache(config.cache) if config.model.uses_cache else None
            self.processors.append(processor_cls(self, pid, group, cache))

    @property
    def timeline(self) -> Optional[List]:
        """Burst tuples ``(start, pid, tid, end, outcome)`` when a
        burst-recording tracer is attached (``record_timeline=True`` or
        any :class:`~repro.obs.RingTracer`), else ``None``.

        The ASCII timeline and the Chrome trace both derive from the
        same tracer event stream — two views of one source of truth.
        """
        getter = getattr(self.tracer, "burst_tuples", None)
        return getter() if getter is not None else None

    def _pid_of(self, tid: int) -> int:
        return tid // self.config.threads_per_processor

    # -- event plumbing -----------------------------------------------------------

    def schedule(self, time: int, fn: Callable, arg, priority: int = 0) -> None:
        """Schedule ``fn(time, arg)``.

        Ties break by *priority*, then by scheduling order.  Three levels
        keep same-cycle semantics right: memory-side events (0) land
        before register deliveries (1), which land before processor
        dispatches (2) — so a line fill arriving at cycle *t* feeds a
        delivery at *t*, which is visible to a thread resuming at *t*.
        """
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, fn, arg))

    def run(self) -> SimulationResult:
        """Run to completion and return the result."""
        for proc in self.processors:
            self.schedule(0, proc.dispatch_event, None)
        max_cycles = self.config.max_cycles
        heap = self._heap
        while heap:
            time, _priority, _seq, fn, arg = heapq.heappop(heap)
            if time > max_cycles:
                raise SimulationTimeout(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({self.live_threads} threads still live) [{self.describe()}]"
                )
            self.now = time
            fn(time, arg)
        if self.live_threads:
            raise SimulationTimeout(
                f"event queue drained with {self.live_threads} threads "
                f"still live (deadlock) [{self.describe()}]"
            )
        self.stats.wall_cycles = self.last_halt_time
        for proc in self.processors:
            self.stats.per_proc_busy[proc.pid] = proc.busy_cycles
            self.stats.per_proc_idle[proc.pid] = proc.idle_cycles
        if self.oracle_caches is not None:
            self.stats.oracle_hits = sum(olc.hits for olc in self.oracle_caches)
            self.stats.oracle_misses = sum(olc.misses for olc in self.oracle_caches)
        if self._lifecycle is not None:
            wall = self.last_halt_time
            # The schedule is a pure function of the config, so folding
            # it after the event loop (rather than on live transitions)
            # cannot diverge from what the memory paths observed — and
            # keeps the heap free of lifecycle bookkeeping events.
            self.stats.component_availability = self._lifecycle.availability(wall)
            if self.tracer is not None:
                for when, comp, state, stage in self._lifecycle.transitions(wall):
                    if state == DEGRADED:
                        self.tracer.component_degrade(when, comp, stage)
                    elif state == FAILED:
                        self.tracer.component_fail(when, comp)
                    elif state == HEALTHY:
                        self.tracer.component_repair(when, comp)
        return SimulationResult(
            self.last_halt_time,
            self.stats,
            self.shared,
            self.threads,
            self.config,
            self.program,
        )

    def describe(self) -> str:
        """Short configuration tag for error messages, so a timeout in an
        engine runlog is triageable without re-deriving the spec."""
        config = self.config
        parts = [
            f"model={config.model.value}",
            f"P={config.num_processors}",
            f"M={config.threads_per_processor}",
            f"latency={config.latency}",
        ]
        faults = config.faults
        if faults is not None and not faults.inert:
            parts.append(
                f"faults={faults.latency_model}"
                f"/loss={faults.loss_rate}/delay={faults.delay_rate}"
                f"/seed={faults.seed}"
            )
        if faults is not None and faults.has_lifecycles:
            lc = faults.lifecycle
            parts.append(
                f"lifecycle={lc.components}c/seed={lc.seed}"
                + ("" if lc.active else "/inert")
            )
        return " ".join(parts)

    def thread_halted(self, time: int) -> None:
        self.live_threads -= 1
        self.stats.halted_threads += 1
        if time > self.last_halt_time:
            self.last_halt_time = time

    def _jitter(self, time: int, addr: int) -> int:
        """Deterministic return-path jitter for one transaction.

        A multiplicative hash of (issue time, address) — reproducible
        run to run, roughly uniform over [0, latency_jitter].  Only the
        return leg is jittered; requests still reach memory in issue
        order, so Fetch-and-Add atomicity and store ordering hold.
        """
        if not self._jitter_range:
            return 0
        h = (time * 2654435761 + addr * 2246822519 + 3266489917) & 0xFFFFFFFF
        return (h >> 9) % (self._jitter_range + 1)

    def _round_trip(self, time: int, addr: int) -> int:
        """Round-trip cycles for a transaction issued now to *addr*.

        With no fault-injection latency model this is the original
        arithmetic (constant latency + legacy jitter knob), kept inline
        and bit-exact; otherwise the pluggable model decides."""
        model = self._latency_model
        if model is None:
            rt = self.latency + self._jitter(time, addr)
        else:
            rt = model.round_trip(time, addr)
        lifecycle = self._lifecycle_active
        if lifecycle is not None:
            rt = lifecycle.stretch(rt, addr, time)
        return rt

    def _mark_inflight(
        self, thread: ThreadContext, dest: int, nwords: int, ready: int
    ) -> None:
        """(Re)stamp the scoreboard for an outstanding load's registers —
        used by the retry/delay paths when a reply's arrival moves."""
        thread.inflight[dest] = ready
        if nwords == 2:
            thread.inflight[dest + 1] = ready
        if ready > thread.pending_until:
            thread.pending_until = ready

    # -- uncached shared-memory transactions ------------------------------------

    def mem_load(
        self,
        time: int,
        addr: int,
        nwords: int,
        thread: ThreadContext,
        dest: int,
        sync: bool,
    ) -> None:
        """Issue an uncached shared load (LWS/LDS): the value is read at
        memory at ``time + latency/2`` and usable at ``time + latency``."""
        kind = MsgKind.READ if nwords == 1 else MsgKind.READ2
        self.stats.count_message(kind, sync)
        self.stats.mem_issued += 1
        rt = self._fixed_rt
        ready = time + (rt if rt is not None else self._round_trip(time, addr))
        txn = 0
        if self.tracer is not None:
            txn = self.tracer.mem_issue(
                time, self._pid_of(thread.tid), thread.tid, kind.name, addr,
                ready - time,
            )
        thread.inflight[dest] = ready
        if nwords == 2:
            thread.inflight[dest + 1] = ready
        if ready > thread.pending_until:
            thread.pending_until = ready
        if self._fault_plan is None:
            # Inlined self.schedule — this is the hottest event source.
            self._seq = seq = self._seq + 1
            heappush(self._heap, (time + self.half_latency, 0, seq,
                                  self._load_event,
                                  (addr, nwords, thread, dest, ready, txn)))
            return
        self._txn_seq += 1
        self.schedule(
            time + self.half_latency,
            self._faulty_load_event,
            (addr, nwords, thread, dest, ready, txn, self._txn_seq, 1, sync),
        )

    def _load_event(self, time: int, arg) -> None:
        addr, nwords, thread, dest, ready, txn = arg
        self.stats.mem_completed += 1
        # Inlined thread.deliver (the hottest completion path): write the
        # register and clear the scoreboard slot only when this response
        # is the one the marker waits for (see ThreadContext.deliver).
        shared = self.shared
        inflight = thread.inflight
        if dest:
            thread.regs[dest] = shared[addr]
        if inflight.get(dest) == ready:
            del inflight[dest]
        if nwords == 2:
            dest += 1  # dest + 1 >= 1, so the r0 drop can't apply
            thread.regs[dest] = shared[addr + 1]
            if inflight.get(dest) == ready:
                del inflight[dest]
        if self.tracer is not None:
            self.tracer.mem_complete(ready, self._pid_of(thread.tid), thread.tid, txn)

    # -- fault-injected load path (repro.faults) ---------------------------------

    def _faulty_load_event(self, time: int, arg) -> None:
        """Request arrival at memory when a fault plan is active: decide
        the reply's fate, then deliver, delay, or NACK."""
        addr, nwords, thread, dest, ready, txn, ftxn, attempt, sync = arg
        lifecycle = self._lifecycle_active
        if lifecycle is not None:
            # A FAILED/REPAIRING module NACKs every request that arrives
            # while it is down.  The NACK carries the scheduled recovery
            # cycle so the retry backs off past the outage instead of
            # burning the attempt budget.
            recover = lifecycle.outage_until(addr, time)
            if recover:
                self.stats.replies_dropped += 1
                self.schedule(
                    ready,
                    self._load_nack_event,
                    (addr, nwords, thread, dest, txn, ftxn, attempt, sync, recover),
                    priority=1,
                )
                return
        lost, delay = self._fault_plan.reply_fate(ftxn, attempt)
        if lost:
            # The reply vanishes in flight; the issuing processor notices
            # at the expected arrival time.  Priority 1 lands the NACK
            # before any dispatch of the waiting thread at that cycle.
            self.stats.replies_dropped += 1
            self.schedule(
                ready,
                self._load_nack_event,
                (addr, nwords, thread, dest, txn, ftxn, attempt, sync, 0),
                priority=1,
            )
            return
        # The value is read at memory now (request arrival), exactly as
        # on the fault-free path; a delayed reply only moves delivery.
        values = (
            (self.shared[addr],)
            if nwords == 1
            else (self.shared[addr], self.shared[addr + 1])
        )
        if delay:
            self.stats.replies_delayed += 1
            ready += delay
            self._mark_inflight(thread, dest, nwords, ready)
            self.schedule(
                ready, self._late_deliver_event, (values, thread, dest, ready, txn),
                priority=1,
            )
            return
        self.stats.mem_completed += 1
        for offset, value in enumerate(values):
            thread.deliver(dest + offset, value, ready)
        if self.tracer is not None:
            self.tracer.mem_complete(ready, self._pid_of(thread.tid), thread.tid, txn)

    def _late_deliver_event(self, time: int, arg) -> None:
        """Deliver a delayed reply (values were read at memory on arrival)."""
        values, thread, dest, ready, txn = arg
        self.stats.mem_completed += 1
        for offset, value in enumerate(values):
            thread.deliver(dest + offset, value, ready)
        if self.tracer is not None:
            self.tracer.mem_complete(ready, self._pid_of(thread.tid), thread.tid, txn)

    def _load_nack_event(self, time: int, arg) -> None:
        """The issuing processor detects a lost load reply and retries."""
        addr, nwords, thread, dest, txn, ftxn, attempt, sync, hint = arg
        pid = self._pid_of(thread.tid)
        backoff = self.processors[pid].nack(time, thread.tid, txn, ftxn, attempt, hint)
        reissue = time + backoff
        kind = MsgKind.READ if nwords == 1 else MsgKind.READ2
        self.stats.count_message(kind, sync)  # retries re-spend bandwidth
        self.stats.retries += 1
        ready = reissue + self._round_trip(reissue, addr)
        if self.tracer is not None:
            self.tracer.mem_retry(reissue, pid, thread.tid, txn, attempt)
            txn = self.tracer.mem_issue(
                reissue, pid, thread.tid, kind.name, addr, ready - reissue
            )
        self._mark_inflight(thread, dest, nwords, ready)
        self.schedule(
            reissue + self.half_latency,
            self._faulty_load_event,
            (addr, nwords, thread, dest, ready, txn, ftxn, attempt + 1, sync),
        )

    def mem_store(
        self, time: int, addr: int, values: tuple, sync: bool, tid: int = -1
    ) -> None:
        """Issue a fire-and-forget shared store (SWS/SDS)."""
        kind = MsgKind.WRITE if len(values) == 1 else MsgKind.WRITE2
        self.stats.count_message(kind, sync)
        if self.tracer is not None:
            pid = self._pid_of(tid) if tid >= 0 else -1
            self.tracer.mem_issue(time, pid, tid, kind.name, addr, self.half_latency)
        self._seq = seq = self._seq + 1  # inlined self.schedule
        heappush(self._heap, (time + self.half_latency, 0, seq,
                              self._store_event, (addr, values)))

    def _store_event(self, time: int, arg) -> None:
        addr, values = arg
        shared = self.shared
        shared[addr] = values[0]
        nvals = len(values)
        if nvals > 1:
            shared[addr + 1] = values[1]
        if self.directory is not None:
            line_words = self._line_words
            first = addr // line_words
            self._invalidate_sharers(time, first, writer=-1)
            if nvals > 1:
                last = (addr + nvals - 1) // line_words
                if last != first:
                    self._invalidate_sharers(time, last, writer=-1)

    def mem_faa(
        self,
        time: int,
        addr: int,
        thread: ThreadContext,
        dest: int,
        addend,
        sync: bool,
    ) -> None:
        """Fetch-and-Add: atomic at the memory module (combining network)."""
        self.stats.count_message(MsgKind.FAA, sync)
        self.stats.mem_issued += 1
        rt = self._fixed_rt
        ready = time + (rt if rt is not None else self._round_trip(time, addr))
        txn = 0
        if self.tracer is not None:
            txn = self.tracer.mem_issue(
                time, self._pid_of(thread.tid), thread.tid, MsgKind.FAA.name, addr,
                ready - time,
            )
        thread.inflight[dest] = ready
        if ready > thread.pending_until:
            thread.pending_until = ready
        if self._fault_plan is None:
            self._seq = seq = self._seq + 1  # inlined self.schedule
            heappush(self._heap, (time + self.half_latency, 0, seq,
                                  self._faa_event,
                                  (addr, thread, dest, addend, ready, txn)))
            return
        self._txn_seq += 1
        self.schedule(
            time + self.half_latency,
            self._faulty_faa_event,
            (addr, thread, dest, addend, ready, txn, self._txn_seq, 1, sync),
        )

    def _faa_event(self, time: int, arg) -> None:
        addr, thread, dest, addend, ready, txn = arg
        old = self.shared[addr]
        self.shared[addr] = old + addend
        self.stats.mem_completed += 1
        thread.deliver(dest, old, ready)
        if self.tracer is not None:
            self.tracer.faa_combine(time, addr, old, addend)
            self.tracer.mem_complete(ready, self._pid_of(thread.tid), thread.tid, txn)
        if self.directory is not None:
            line = addr // self.config.cache.line_words
            self._invalidate_sharers(time, line, writer=-1)

    # -- fault-injected Fetch-and-Add path ---------------------------------------

    def _faa_apply(self, time: int, addr: int, addend, ftxn: int):
        """Apply one Fetch-and-Add *exactly once* under retries.

        A retry of a transaction whose add already landed (only the
        reply was lost) is answered from the replay buffer — the memory
        module remembers the old value by transaction id instead of
        re-applying the add."""
        replay = self._faa_replay
        if ftxn in replay:
            self.stats.faa_replays += 1
            if self.tracer is not None:
                self.tracer.faa_replay(time, addr, ftxn)
            return replay[ftxn]
        old = self.shared[addr]
        self.shared[addr] = old + addend
        if self.tracer is not None:
            self.tracer.faa_combine(time, addr, old, addend)
        if self.directory is not None:
            line = addr // self.config.cache.line_words
            self._invalidate_sharers(time, line, writer=-1)
        return old

    def _faulty_faa_event(self, time: int, arg) -> None:
        addr, thread, dest, addend, ready, txn, ftxn, attempt, sync = arg
        lifecycle = self._lifecycle_active
        if lifecycle is not None:
            # A down module rejects the request before the add is
            # applied (no replay entry): the retry after recovery
            # performs the one and only application.
            recover = lifecycle.outage_until(addr, time)
            if recover:
                self.stats.replies_dropped += 1
                self.schedule(
                    ready,
                    self._faa_nack_event,
                    (addr, thread, dest, addend, txn, ftxn, attempt, sync, recover),
                    priority=1,
                )
                return
        old = self._faa_apply(time, addr, addend, ftxn)
        lost, delay = self._fault_plan.reply_fate(ftxn, attempt)
        if lost:
            # The add is already applied; remember the old value so the
            # retry replays the reply instead of adding again.
            self._faa_replay[ftxn] = old
            self.stats.replies_dropped += 1
            self.schedule(
                ready,
                self._faa_nack_event,
                (addr, thread, dest, addend, txn, ftxn, attempt, sync, 0),
                priority=1,
            )
            return
        self._faa_replay.pop(ftxn, None)
        if delay:
            self.stats.replies_delayed += 1
            ready += delay
            self._mark_inflight(thread, dest, 1, ready)
            self.schedule(
                ready, self._late_deliver_event, ((old,), thread, dest, ready, txn),
                priority=1,
            )
            return
        self.stats.mem_completed += 1
        thread.deliver(dest, old, ready)
        if self.tracer is not None:
            self.tracer.mem_complete(ready, self._pid_of(thread.tid), thread.tid, txn)

    def _faa_nack_event(self, time: int, arg) -> None:
        addr, thread, dest, addend, txn, ftxn, attempt, sync, hint = arg
        pid = self._pid_of(thread.tid)
        backoff = self.processors[pid].nack(time, thread.tid, txn, ftxn, attempt, hint)
        reissue = time + backoff
        self.stats.count_message(MsgKind.FAA, sync)
        self.stats.retries += 1
        ready = reissue + self._round_trip(reissue, addr)
        if self.tracer is not None:
            self.tracer.mem_retry(reissue, pid, thread.tid, txn, attempt)
            txn = self.tracer.mem_issue(
                reissue, pid, thread.tid, MsgKind.FAA.name, addr, ready - reissue
            )
        self._mark_inflight(thread, dest, 1, ready)
        self.schedule(
            reissue + self.half_latency,
            self._faulty_faa_event,
            (addr, thread, dest, addend, ready, txn, ftxn, attempt + 1, sync),
        )

    # -- cached shared-memory transactions ---------------------------------------

    def cached_load(
        self,
        time: int,
        addr: int,
        nwords: int,
        thread: ThreadContext,
        dest: int,
        pid: int,
        sync: bool,
    ) -> int:
        """Cache-missing shared load on the cached machine.

        Issues a line fill for every needed line that is neither resident
        nor already in flight; a load whose line is already being fetched
        *merges* onto the outstanding fill (MSHR behaviour — essential
        once grouped loads touch the same line back to back, or every
        group member would re-fetch the line).  Returns the number of
        fills actually issued (0 = fully merged).

        The requested words are delivered to the thread when the last
        involved line has been installed.
        """
        line_words = self._line_words
        proc = self.processors[pid]
        first = addr // line_words
        if nwords == 1:
            lines = (first,)
        else:
            last = (addr + nwords - 1) // line_words
            lines = (first,) if last == first else (first, last)
        ready = 0
        issued = 0
        rt = self._fixed_rt
        for line in lines:
            pending = proc.mshr.get(line)
            if pending is not None:
                ready = max(ready, pending)
                continue
            if proc.cache.contains(line * line_words):
                continue
            fill_ready = time + (rt if rt is not None
                                 else self._round_trip(time, line))
            proc.mshr[line] = fill_ready
            issued += 1
            self.stats.count_message(MsgKind.LINE_READ, sync)
            self.stats.mem_issued += 1
            txn = 0
            if self.tracer is not None:
                txn = self.tracer.mem_issue(
                    time, pid, thread.tid, MsgKind.LINE_READ.name,
                    line * line_words, fill_ready - time,
                )
            if self._fault_plan is None:
                self.schedule(
                    time + self.half_latency,
                    self._line_read_event,
                    (line, pid, fill_ready, txn),
                )
            else:
                self._txn_seq += 1
                self.schedule(
                    time + self.half_latency,
                    self._faulty_line_read_event,
                    (line, pid, fill_ready, txn, self._txn_seq, 1, sync),
                )
            ready = max(ready, fill_ready)
        if ready <= time:  # resident after all (race with a fill): serve now
            ready = time
        thread.inflight[dest] = ready
        if nwords == 2:
            thread.inflight[dest + 1] = ready
        if ready > thread.pending_until:
            thread.pending_until = ready
        self.schedule(
            ready, self._cached_deliver_event, (addr, nwords, thread, dest, pid, ready),
            priority=1,
        )
        return issued

    def _line_read_event(self, time: int, arg) -> None:
        line, pid, fill_ready, txn = arg
        line_words = self._line_words
        base = line * line_words
        data = list(self.shared[base : base + line_words])
        self.directory.add_sharer(line, pid)
        self.schedule(fill_ready, self._line_fill_event, (line, data, pid, txn))

    def _faulty_line_read_event(self, time: int, arg) -> None:
        """Line-fill request arrival at memory under a fault plan."""
        line, pid, fill_ready, txn, ftxn, attempt, sync = arg
        lifecycle = self._lifecycle_active
        if lifecycle is not None:
            # Lines map to components exactly like word addresses do —
            # by index modulo the component count.
            recover = lifecycle.outage_until(line, time)
            if recover:
                self.stats.replies_dropped += 1
                self.schedule(
                    fill_ready,
                    self._fill_nack_event,
                    (line, pid, txn, ftxn, attempt, sync, recover),
                    priority=1,
                )
                return
        lost, delay = self._fault_plan.reply_fate(ftxn, attempt)
        if lost:
            self.stats.replies_dropped += 1
            self.schedule(
                fill_ready,
                self._fill_nack_event,
                (line, pid, txn, ftxn, attempt, sync, 0),
                priority=1,
            )
            return
        if delay:
            self.stats.replies_delayed += 1
            fill_ready += delay
            proc = self.processors[pid]
            if line in proc.mshr:
                proc.mshr[line] = fill_ready
        # Memory-side read + directory registration, as on the fault-free
        # path (the snapshot is taken at request arrival either way).
        line_words = self.config.cache.line_words
        base = line * line_words
        data = list(self.shared[base : base + line_words])
        self.directory.add_sharer(line, pid)
        self.schedule(fill_ready, self._line_fill_event, (line, data, pid, txn))

    def _fill_nack_event(self, time: int, arg) -> None:
        """The requesting processor detects a lost fill and retries it."""
        line, pid, txn, ftxn, attempt, sync, hint = arg
        proc = self.processors[pid]
        backoff = proc.nack(time, -1, txn, ftxn, attempt, hint)
        reissue = time + backoff
        self.stats.count_message(MsgKind.LINE_READ, sync)
        self.stats.retries += 1
        fill_ready = reissue + self._round_trip(reissue, line)
        if self.tracer is not None:
            self.tracer.mem_retry(reissue, pid, -1, txn, attempt)
            txn = self.tracer.mem_issue(
                reissue, pid, -1, MsgKind.LINE_READ.name,
                line * self.config.cache.line_words, fill_ready - reissue,
            )
        # The MSHR entry outlives the lost fill (cached_load only issues
        # when no entry exists), so restamp it; waiting loads' delivery
        # events re-check it and push themselves out (_cached_deliver_event).
        if line in proc.mshr:
            proc.mshr[line] = fill_ready
        self.schedule(
            reissue + self.half_latency,
            self._faulty_line_read_event,
            (line, pid, fill_ready, txn, ftxn, attempt + 1, sync),
        )

    def _line_fill_event(self, time: int, arg) -> None:
        line, data, pid, txn = arg
        proc = self.processors[pid]
        proc.mshr.pop(line, None)
        self.stats.mem_completed += 1
        if self.tracer is not None:
            self.tracer.mem_complete(time, pid, -1, txn)
        if pid not in self.directory.sharers_of(line):
            # A write invalidated this fill while it was in flight (the
            # directory already dropped us): the data is stale, so the
            # fill is squashed.  The requesting loads' delivery events
            # fall back to the up-to-date memory image.
            return
        victim = proc.cache.install(line, data)
        if victim is not None:
            self.directory.drop_sharer(victim, pid)
            if self.tracer is not None:
                self.tracer.cache_evict(time, pid, victim)

    def _cached_deliver_event(self, time: int, arg) -> None:
        addr, nwords, thread, dest, pid, ready = arg
        if self._fault_plan is not None:
            # A fill this load was waiting on may have been lost or
            # delayed after this delivery was scheduled; its MSHR entry
            # then carries a later arrival.  Chase it: restamp the
            # scoreboard and re-run delivery at the new time (repeats
            # until the fill actually lands).
            mshr = self.processors[pid].mshr
            line_words = self.config.cache.line_words
            pending = 0
            for offset in range(nwords):
                entry = mshr.get((addr + offset) // line_words)
                if entry is not None and entry > pending:
                    pending = entry
            if pending > ready:
                self._mark_inflight(thread, dest, nwords, pending)
                self.schedule(
                    pending,
                    self._cached_deliver_event,
                    (addr, nwords, thread, dest, pid, pending),
                    priority=1,
                )
                return
        cache = self.processors[pid].cache
        for offset in range(nwords):
            value = cache.lookup(addr + offset)
            if value is None:
                # The line was evicted (or invalidated) between fill and
                # delivery; fall back to the memory image.
                value = self.shared[addr + offset]
            thread.deliver(dest + offset, value, ready)

    def write_through(
        self, time: int, addr: int, values: tuple, pid: int, sync: bool,
        combined: bool = False,
    ) -> None:
        """Shared store on the cached machine: update memory and
        invalidate *every* cached copy of the line.

        The writer's own processor is not spared: with a no-allocate
        write-through cache, a concurrent fetch by a sibling thread on the
        writer's processor can be installing a stale snapshot of the line,
        and only an unconditional invalidation closes that window (a real
        ownership protocol would instead serialise the write against the
        fetch at the directory).
        """
        if combined:
            for _ in values:
                self.stats.count_message(MsgKind.WRITE_COMBINED, sync)
            kind = MsgKind.WRITE_COMBINED
        else:
            kind = MsgKind.WRITE_THROUGH if len(values) == 1 else MsgKind.WRITE2
            self.stats.count_message(kind, sync)
        if self.tracer is not None:
            self.tracer.mem_issue(time, pid, -1, kind.name, addr, self.half_latency)
        self.schedule(
            time + self.half_latency, self._write_through_event, (addr, values)
        )

    def _write_through_event(self, time: int, arg) -> None:
        addr, values = arg
        shared = self.shared
        shared[addr] = values[0]
        nvals = len(values)
        if nvals > 1:
            shared[addr + 1] = values[1]
        line_words = self._line_words
        first = addr // line_words
        self._invalidate_sharers(time, first, writer=-1)
        if nvals > 1:
            last = (addr + nvals - 1) // line_words
            if last != first:
                self._invalidate_sharers(time, last, writer=-1)

    def _invalidate_sharers(self, time: int, line: int, writer: int) -> None:
        for victim in self.directory.invalidate_others(line, writer):
            self.stats.count_message(MsgKind.INVALIDATE, sync=False)
            self.schedule(time + self.half_latency, self._inval_event, (line, victim))

    def _inval_event(self, time: int, arg) -> None:
        line, victim = arg
        self.processors[victim].cache.invalidate(line)
        if self.tracer is not None:
            self.tracer.invalidate(time, victim, line)
