"""Machine configuration dataclasses.

The defaults reproduce the paper's simulated machine: a constant 200-cycle
round-trip latency to shared memory, ordered delivery, zero-cost context
switches for opcode-identified switch points, and (for the cached models of
Section 6) a per-processor shared-data cache kept coherent by a full-map
write-invalidate directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional

from repro.faults.config import FaultConfig
from repro.machine.models import SwitchModel

#: Canonical names for the keyword spellings that historically diverged
#: between :class:`MachineConfig` (``num_processors``/``threads_per_processor``)
#: and the harness/CLI (``processors``/``level``).  Everything new goes
#: through :func:`normalize_config_kwargs` so both spellings are accepted
#: and exactly one survives.
_KWARG_ALIASES: Dict[str, str] = {
    "processors": "num_processors",
    "level": "threads_per_processor",
    "threads": "threads_per_processor",
}


def normalize_config_kwargs(kwargs: Dict) -> Dict:
    """Map alias keyword spellings onto the canonical dataclass fields.

    ``processors`` -> ``num_processors`` and ``level`` (or ``threads``)
    -> ``threads_per_processor``.  Supplying an alias *and* its canonical
    form is ambiguous and raises ``TypeError``.
    """
    normalized = dict(kwargs)
    for alias, canonical in _KWARG_ALIASES.items():
        if alias in normalized:
            if canonical in normalized:
                raise TypeError(
                    f"got both {alias!r} and {canonical!r}; pass exactly one"
                )
            normalized[canonical] = normalized.pop(alias)
    return normalized


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Per-processor shared-data cache geometry.

    The paper does not publish its main cache geometry; these defaults are
    our documented assumption (see DESIGN.md §2).  ``line_words`` is in
    32-bit words; the total capacity defaults to 64 sets x 4 ways x 8
    words = 2048 words per processor.
    """

    num_sets: int = 64
    assoc: int = 4
    line_words: int = 8

    def __post_init__(self) -> None:
        if self.num_sets < 1 or self.assoc < 1:
            raise ValueError("cache must have at least one set and one way")
        if self.line_words < 1 or self.line_words & (self.line_words - 1):
            raise ValueError("line_words must be a positive power of two")

    @property
    def total_words(self) -> int:
        return self.num_sets * self.assoc * self.line_words


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """Message-size parameters for the bandwidth accounting of Section 6.1.

    The network itself is not simulated (constant latency, as in the
    paper); these sizes only feed the bits-per-cycle bandwidth table.
    """

    header_bits: int = 32
    addr_bits: int = 32
    word_bits: int = 32
    ack_bits: int = 32  # return acknowledgement for writes / invalidations


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine."""

    model: SwitchModel = SwitchModel.SWITCH_ON_LOAD
    num_processors: int = 1
    threads_per_processor: int = 1
    #: Round-trip shared-memory latency in cycles; requests reach memory
    #: after ``latency // 2`` cycles.  Ignored by the IDEAL model.
    latency: int = 200
    #: Wasted pipeline-flush cycles per taken switch, charged only by
    #: models with ``pays_flush_cost`` (switch-on-miss).
    switch_cost: int = 4
    #: Conditional-switch: force the next SWITCH after this many cycles of
    #: uninterrupted execution (Section 6.2's critical-section fix).
    #: ``0`` disables the mechanism.
    forced_switch_interval: int = 200
    #: Maximum cycles a thread may run inside one simulation event before
    #: the event engine re-synchronises global state (pure simulation
    #: mechanics — costs no simulated cycles).
    burst_limit: int = 256
    cache: Optional[CacheConfig] = None
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    #: Section 5.2 estimator: give each thread a one-line 32-word cache;
    #: non-sync shared loads that hit it are treated as if an inter-block
    #: compiler had grouped them with the preceding reference (no network
    #: transaction, no wait).  Meaningful with EXPLICIT_SWITCH, where a
    #: SWITCH is then only taken when a real load is outstanding.
    interblock_oracle: bool = False
    #: Line size (words) of the estimator's one-line cache.
    oracle_line_words: int = 32
    #: Record a (time, processor, thread, end, outcome) event per burst
    #: into ``Simulator.timeline`` (for the timeline tools; small runs only).
    record_timeline: bool = False
    #: Deterministic latency jitter: each value-returning transaction's
    #: round trip becomes ``latency + U[0, latency_jitter]`` (a hash of
    #: the issue time and address — reproducible).  The paper models a
    #: constant latency but notes real networks "can also have a large
    #: variance"; this knob probes that.  Jitter breaks ordered delivery,
    #: under which round-robin scheduling is optimal (Section 3).
    latency_jitter: int = 0
    #: Fault injection (see :mod:`repro.faults`): non-constant latency
    #: models and transient reply loss/delay with NACK/retry recovery.
    #: ``None`` — and any *inert* :class:`~repro.faults.config.FaultConfig`
    #: — reproduces the plain machine bit for bit.
    faults: Optional[FaultConfig] = None
    #: Safety valve: abort the simulation after this many cycles.
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("need at least one processor")
        if self.threads_per_processor < 1:
            raise ValueError("need at least one thread per processor")
        if self.latency < 0 or self.latency % 2:
            raise ValueError("latency must be a non-negative even cycle count")
        if self.burst_limit < 1:
            raise ValueError("burst_limit must be positive")
        if self.model.uses_cache and self.cache is None:
            object.__setattr__(self, "cache", CacheConfig())

    @property
    def total_threads(self) -> int:
        return self.num_processors * self.threads_per_processor

    #: Alias properties for the harness/CLI spellings (see
    #: :func:`normalize_config_kwargs`).
    @property
    def processors(self) -> int:
        return self.num_processors

    @property
    def level(self) -> int:
        return self.threads_per_processor

    @classmethod
    def create(cls, **kwargs) -> "MachineConfig":
        """Construct a config accepting either keyword spelling
        (``processors``/``num_processors``, ``level``/``threads_per_processor``)."""
        return cls(**normalize_config_kwargs(kwargs))

    def replace(self, **changes) -> "MachineConfig":
        """Convenience wrapper around :func:`dataclasses.replace`
        (alias spellings accepted)."""
        return dataclasses.replace(self, **normalize_config_kwargs(changes))

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe dictionary; inverse of :meth:`from_dict`."""
        out = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "model":
                value = value.value
            elif field.name in ("cache", "network", "faults"):
                value = dataclasses.asdict(value) if value is not None else None
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "MachineConfig":
        data = dict(data)
        data["model"] = SwitchModel(data["model"])
        if data.get("cache") is not None:
            data["cache"] = CacheConfig(**data["cache"])
        if data.get("network") is not None:
            data["network"] = NetworkConfig(**data["network"])
        else:
            data.pop("network", None)
        if data.get("faults") is not None:
            data["faults"] = FaultConfig.from_dict(data["faults"])
        else:
            data.pop("faults", None)
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def config_key(self) -> str:
        """Stable content hash of this configuration.

        Explicit, versioned hashing (canonical-JSON SHA-256 prefix) rather
        than dataclass ``hash()`` — the result is reproducible across
        processes and Python versions, which the on-disk result cache
        relies on.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
