"""Machine configuration dataclasses.

The defaults reproduce the paper's simulated machine: a constant 200-cycle
round-trip latency to shared memory, ordered delivery, zero-cost context
switches for opcode-identified switch points, and (for the cached models of
Section 6) a per-processor shared-data cache kept coherent by a full-map
write-invalidate directory.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.machine.models import SwitchModel


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Per-processor shared-data cache geometry.

    The paper does not publish its main cache geometry; these defaults are
    our documented assumption (see DESIGN.md §2).  ``line_words`` is in
    32-bit words; the total capacity defaults to 64 sets x 4 ways x 8
    words = 2048 words per processor.
    """

    num_sets: int = 64
    assoc: int = 4
    line_words: int = 8

    def __post_init__(self) -> None:
        if self.num_sets < 1 or self.assoc < 1:
            raise ValueError("cache must have at least one set and one way")
        if self.line_words < 1 or self.line_words & (self.line_words - 1):
            raise ValueError("line_words must be a positive power of two")

    @property
    def total_words(self) -> int:
        return self.num_sets * self.assoc * self.line_words


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """Message-size parameters for the bandwidth accounting of Section 6.1.

    The network itself is not simulated (constant latency, as in the
    paper); these sizes only feed the bits-per-cycle bandwidth table.
    """

    header_bits: int = 32
    addr_bits: int = 32
    word_bits: int = 32
    ack_bits: int = 32  # return acknowledgement for writes / invalidations


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine."""

    model: SwitchModel = SwitchModel.SWITCH_ON_LOAD
    num_processors: int = 1
    threads_per_processor: int = 1
    #: Round-trip shared-memory latency in cycles; requests reach memory
    #: after ``latency // 2`` cycles.  Ignored by the IDEAL model.
    latency: int = 200
    #: Wasted pipeline-flush cycles per taken switch, charged only by
    #: models with ``pays_flush_cost`` (switch-on-miss).
    switch_cost: int = 4
    #: Conditional-switch: force the next SWITCH after this many cycles of
    #: uninterrupted execution (Section 6.2's critical-section fix).
    #: ``0`` disables the mechanism.
    forced_switch_interval: int = 200
    #: Maximum cycles a thread may run inside one simulation event before
    #: the event engine re-synchronises global state (pure simulation
    #: mechanics — costs no simulated cycles).
    burst_limit: int = 256
    cache: Optional[CacheConfig] = None
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    #: Section 5.2 estimator: give each thread a one-line 32-word cache;
    #: non-sync shared loads that hit it are treated as if an inter-block
    #: compiler had grouped them with the preceding reference (no network
    #: transaction, no wait).  Meaningful with EXPLICIT_SWITCH, where a
    #: SWITCH is then only taken when a real load is outstanding.
    interblock_oracle: bool = False
    #: Line size (words) of the estimator's one-line cache.
    oracle_line_words: int = 32
    #: Record a (time, processor, thread, end, outcome) event per burst
    #: into ``Simulator.timeline`` (for the timeline tools; small runs only).
    record_timeline: bool = False
    #: Deterministic latency jitter: each value-returning transaction's
    #: round trip becomes ``latency + U[0, latency_jitter]`` (a hash of
    #: the issue time and address — reproducible).  The paper models a
    #: constant latency but notes real networks "can also have a large
    #: variance"; this knob probes that.  Jitter breaks ordered delivery,
    #: under which round-robin scheduling is optimal (Section 3).
    latency_jitter: int = 0
    #: Safety valve: abort the simulation after this many cycles.
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("need at least one processor")
        if self.threads_per_processor < 1:
            raise ValueError("need at least one thread per processor")
        if self.latency < 0 or self.latency % 2:
            raise ValueError("latency must be a non-negative even cycle count")
        if self.burst_limit < 1:
            raise ValueError("burst_limit must be positive")
        if self.model.uses_cache and self.cache is None:
            object.__setattr__(self, "cache", CacheConfig())

    @property
    def total_threads(self) -> int:
        return self.num_processors * self.threads_per_processor

    def replace(self, **changes) -> "MachineConfig":
        """Convenience wrapper around :func:`dataclasses.replace`."""
        return dataclasses.replace(self, **changes)
