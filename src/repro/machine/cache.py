"""Per-processor shared-data cache (Section 6).

A set-associative, LRU, **write-through / no-write-allocate** cache in
front of shared memory.  Write-through keeps the paper's "stores are
fire-and-forget and never switch" semantics without an ownership protocol:
every shared store propagates a word to memory, where the full-map
directory (:mod:`repro.machine.directory`) invalidates the other cached
copies.  The writer's own copy, if present, is updated in place.

Addresses are word addresses; a line holds ``line_words`` consecutive
words and is indexed by ``(addr // line_words) % num_sets``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.machine.config import CacheConfig


class Cache:
    """One processor's shared-data cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.line_words = config.line_words
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        # One OrderedDict per set: line_number -> list of word values.
        # OrderedDict order = LRU order (oldest first).
        self._sets: List["OrderedDict[int, List]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    # -- lookups -----------------------------------------------------------------

    def _set_for(self, line: int) -> "OrderedDict[int, List]":
        return self._sets[line % self.num_sets]

    def line_of(self, addr: int) -> int:
        return addr // self.line_words

    def lookup(self, addr: int):
        """Return the cached value of word *addr*, or None on a miss.

        A hit refreshes the line's LRU position.  (Word values are never
        None; shared memory is initialised to numeric zero.)
        """
        line = addr // self.line_words
        cache_set = self._sets[line % self.num_sets]
        data = cache_set.get(line)
        if data is None:
            return None
        cache_set.move_to_end(line)
        return data[addr - line * self.line_words]

    def contains(self, addr: int) -> bool:
        line = addr // self.line_words
        return line in self._sets[line % self.num_sets]

    # -- mutations ---------------------------------------------------------------

    def install(self, line: int, data: List) -> Optional[int]:
        """Install a fetched line; returns the evicted line number, if any.

        Lines are always clean (write-through), so eviction is silent.
        """
        cache_set = self._set_for(line)
        victim = None
        if line not in cache_set and len(cache_set) >= self.assoc:
            victim, _ = cache_set.popitem(last=False)
        cache_set[line] = list(data)
        cache_set.move_to_end(line)
        return victim

    def update_if_present(self, addr: int, value) -> bool:
        """Write-through local update: refresh our own copy on a store."""
        line = addr // self.line_words
        cache_set = self._sets[line % self.num_sets]
        data = cache_set.get(line)
        if data is None:
            return False
        data[addr - line * self.line_words] = value
        return True

    def invalidate(self, line: int) -> bool:
        """Directory-initiated invalidation; True if the line was present."""
        cache_set = self._set_for(line)
        return cache_set.pop(line, None) is not None

    def flush(self) -> None:
        """Drop every line (used by tests and machine reset)."""
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)


class OneLineCache:
    """The tiny per-thread cache of Section 5.2.

    One line of 32 words, used only as an *estimator*: a load that hits in
    this cache touched the same structure/array as the preceding reference
    and could therefore have been grouped with it by an inter-block
    compiler.  It stores no data — only the current line number.
    """

    def __init__(self, line_words: int = 32):
        self.line_words = line_words
        self._line: Optional[int] = None
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Record an access; True when it hits the single resident line."""
        line = addr // self.line_words
        if line == self._line:
            self.hits += 1
            return True
        self._line = line
        self.misses += 1
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
