"""The simulated multithreaded shared-memory multiprocessor.

This package implements the paper's machine model: ``P`` processors, each
holding ``M`` hardware thread contexts scheduled round-robin, connected to
shared memory by a network with a constant round-trip latency (200 cycles
by default).  The context-switch policy — *when* a thread gives up the
processor — is the experimental variable; every model from the paper's
Figure 1 taxonomy is available in :class:`~repro.machine.models.SwitchModel`.
"""

from repro.machine.models import SwitchModel
from repro.machine.config import MachineConfig, CacheConfig, NetworkConfig
from repro.machine.stats import SimStats
from repro.machine.simulator import Simulator, SimulationResult, SimulationTimeout
from repro.machine.thread import ThreadContext

__all__ = [
    "SwitchModel",
    "MachineConfig",
    "CacheConfig",
    "NetworkConfig",
    "SimStats",
    "Simulator",
    "SimulationResult",
    "SimulationTimeout",
    "ThreadContext",
]
