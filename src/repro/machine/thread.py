"""Per-thread hardware context.

A thread owns its registers (32 integer + 32 floating point, one 64-slot
array), its private local memory, and the split-phase bookkeeping used by
the grouping models: ``inflight`` maps a destination register to the cycle
its shared load will return, and ``pending_until`` is the latest such
cycle — the time the thread may resume after a taken context switch.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.registers import NUM_REGS


class ThreadContext:
    """One hardware thread context."""

    __slots__ = (
        "tid",
        "regs",
        "local",
        "pc",
        "halted",
        "resume_time",
        "pending_until",
        "inflight",
        "run_cycles",
        "run_start",
        "halt_time",
    )

    def __init__(self, tid: int, local_size: int = 0):
        self.tid = tid
        self.regs: List = [0] * NUM_REGS
        self.local: List = [0] * local_size
        self.pc = 0
        self.halted = False
        #: Earliest cycle the thread may run again after a switch.
        self.resume_time = 0
        #: Return time of the latest outstanding shared load.
        self.pending_until = 0
        #: dest register slot -> cycle its in-flight load returns.
        self.inflight: Dict[int, int] = {}
        #: Busy cycles since the last *taken* context switch.
        self.run_cycles = 0
        #: Simulated time at which the current run began (for the
        #: conditional-switch forced-switch interval).
        self.run_start = 0
        self.halt_time = 0

    def deliver(self, reg: int, value, ready: "int | None" = None) -> None:
        """A shared-load response writes *reg* (called by memory events).

        *ready* is the round-trip completion time of the load that issued
        this response; the in-flight marker is only cleared when it
        matches, so a newer load to the same register (write-after-write)
        keeps the register marked busy until its own response lands.
        Responses are processed in timestamp order (ordered delivery), so
        the final register value is always the latest load's.
        """
        if reg != 0:  # r0 stays zero
            self.regs[reg] = value
        if ready is None or self.inflight.get(reg) == ready:
            self.inflight.pop(reg, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self.halted else f"pc={self.pc}"
        return f"<Thread {self.tid} {state}>"
