"""The blessed programmatic entry point.

Everything a user of the reproduction needs, with picklable inputs and
outputs and no internal imports::

    import repro

    result = repro.simulate("sieve", model="explicit-switch",
                            processors=4, level=8, scale="small")
    print(result.wall_cycles, result.stats.mean_run_length)

    specs = [repro.RunSpec.create("sor", model=m, processors=2, level=4,
                                  scale="tiny")
             for m in repro.list_models() if m != "ideal"]
    for spec, res in zip(specs, repro.sweep(specs, workers=4)):
        print(spec.label(), res.wall_cycles)

``simulate`` runs one configuration; ``sweep`` fans a list of
:class:`~repro.engine.spec.RunSpec` out over worker processes with
deterministic result ordering and optional on-disk caching.  The old
entry points (``repro.runtime.loader``, ``repro.harness.experiment``)
are gone — importing them raises ``ImportError`` naming the
replacement.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.apps.registry import app_names
from repro.engine.cache import ResultCache
from repro.engine.executor import Engine
from repro.engine.spec import DEFAULT_LATENCY, RunSpec
from repro.machine.models import SwitchModel
from repro.machine.simulator import SimulationResult
from repro.obs.tracer import Tracer

SpecLike = Union[RunSpec, Dict]


def list_apps() -> List[str]:
    """Names of the registered benchmark applications (paper Table 1)."""
    return app_names()


def list_models() -> List[str]:
    """Names of the switch models (paper Figure 1 taxonomy)."""
    return [model.value for model in SwitchModel]


def backends() -> List[Dict]:
    """The registered execution backends (:mod:`repro.jit`).

    One dictionary per backend with ``name``, ``available``, ``default``
    and ``description`` keys — the programmatic twin of
    ``repro-bench --list-backends``.  Backends are bit-identical by
    contract; choosing one changes wall-clock speed only.
    """
    from repro.jit import backend_info

    return backend_info()


def _as_spec(spec: SpecLike) -> RunSpec:
    if isinstance(spec, RunSpec):
        return spec
    if isinstance(spec, dict):
        return RunSpec.create(**spec)
    raise TypeError(f"expected RunSpec or dict, got {type(spec).__name__}")


def simulate(
    app_name: str,
    *,
    model: Union[str, SwitchModel] = SwitchModel.SWITCH_ON_LOAD,
    processors: int = 1,
    level: int = 1,
    scale: str = "small",
    latency: Optional[int] = DEFAULT_LATENCY,
    oracle: bool = False,
    cache: Union[ResultCache, str, None] = None,
    tracer: Optional[Tracer] = None,
    backend: Optional[str] = None,
    **overrides,
) -> SimulationResult:
    """Simulate one registered application on one machine configuration.

    *model* accepts the enum or its string value (``"switch-on-load"``,
    ...); *latency* is the round-trip shared-memory latency in cycles
    (forced to 0 on the ideal machine); remaining keyword arguments are
    :class:`~repro.machine.config.MachineConfig` overrides, accepting
    either keyword spelling (``switch_cost=0``, ``latency_jitter=100``,
    ``cache=CacheConfig(...)``, ...).  Pass *cache* (a directory or
    :class:`~repro.engine.ResultCache`) to persist/reuse the result on
    disk.  Pass *tracer* (e.g. a :class:`~repro.obs.RingTracer`) to
    record cycle-level events; traced runs execute in-process and bypass
    the result cache — a stored payload has no event stream to replay.
    Pass *backend* (``"interpreter"``, ``"compiled"``, ``"auto"``; see
    :func:`backends`) to pick the execution backend — results are
    bit-identical whichever runs.
    """
    if SwitchModel(model) is SwitchModel.IDEAL and latency == DEFAULT_LATENCY:
        latency = 0
    spec = RunSpec.create(
        app_name,
        model=model,
        processors=processors,
        level=level,
        scale=scale,
        latency=latency,
        oracle=oracle,
        backend=backend,
        **overrides,
    )
    if tracer is not None and tracer.enabled:
        from repro.engine.executor import _build
        from repro.runtime.execution import run_app

        app, program = _build(
            spec.app, spec.total_threads, spec.effective_code_model.value, spec.scale
        )
        return run_app(
            app, spec.machine_config(), program=program, tracer=tracer,
            backend=spec.backend,
        )
    with Engine(workers=1, cache=cache) as engine:
        return engine.run(spec)


def sweep(
    specs: Iterable[SpecLike],
    *,
    workers: int = 1,
    cache: Union[ResultCache, str, None] = None,
    timeout: Optional[float] = None,
    progress=None,
    backend: Optional[str] = None,
) -> List[SimulationResult]:
    """Execute a list of specs (RunSpecs or keyword dictionaries).

    Results come back in input order and are identical whatever the
    worker count; with *cache* set, completed runs persist across calls
    and processes.  Raises on the first failed run (after the whole sweep
    has been collected).  *backend* sets the default execution backend
    for specs that do not name one (see :func:`backends`); the choice
    never affects results or cache hits, only wall-clock speed.
    """
    run_specs = [_as_spec(spec) for spec in specs]
    with Engine(
        workers=workers, cache=cache, timeout=timeout, progress=progress,
        backend=backend,
    ) as engine:
        return engine.run_many(run_specs, on_error="raise")
