"""IR -> Python code generation for the compiled backend.

The interpreter (:meth:`repro.machine.processor.Processor._burst`)
re-decodes every instruction on every simulated cycle: opcode range
checks, operand attribute loads, model branches, tracer ``is None``
tests.  This module removes all of that by *specializing*: for a given
finalized program and a given machine variant it emits one plain Python
function per burst entry point, with

* operands resolved to literal register indices and immediates
  (``regs[7] + 12`` instead of ``regs[ins.rs1] + ins.imm``),
* the opcode dispatch unrolled into straight-line statements,
* the switch-model decisions folded at compile time (an explicit-switch
  block contains no conditional-switch code and vice versa),
* tracer / oracle / cache probes hoisted out entirely when the variant
  runs without them and inlined when it runs with them, and
* runs of non-switching ALU/FP/local instructions guarded by a single
  hoisted deadline + scoreboard check (the *fast path*), falling back to
  the exact per-instruction guard sequence when a wait could land inside
  the run.

Equivalence contract
--------------------
The generated code must be **bit-identical** to the interpreter: same
SimStats, same tracer event stream, same exceptions with the same
messages.  Every emission site therefore mirrors a specific line of
``_burst`` — per-instruction order is (1) deadline check, (2) in-flight
scoreboard check, (3) tracer probe, (4) execution — and anything the
interpreter evaluates for its side effects (a divide-by-zero check on a
discarded destination, a cache LRU touch) is still evaluated here.

A *block function* covers the instructions from its entry pc up to the
first unconditional control transfer (or an emission cap) and has the
signature::

    fn(proc, thread, t, deadline, run0) -> (outcome, t, pc, n, resume, flush)

where *outcome* is one of the interpreter's ``OUT_*`` codes or
:data:`CONTINUE` (control moved to ``pc`` within the same burst; the
driver dispatches the next block).  Blocks are compiled lazily, on first
dispatch, because any pc can become a burst entry (deadline pauses and
mid-block switch resumes land anywhere); compiling only reached entries
keeps compile time proportional to the executed footprint.
"""

from __future__ import annotations

import math
import time
from heapq import heappush
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction, instr_reads, instr_writes
from repro.isa.opcodes import Op
from repro.machine.network import MsgKind
from repro.machine.processor import (
    ExecutionError,
    M_COND,
    M_EXPLICIT,
    M_IDEAL,
    M_MISS,
    M_SOL,
    M_USE,
    M_USE_MISS,
    OUT_HALT,
    OUT_PAUSE,
    OUT_SWITCH,
    OUT_YIELD,
)

#: Block-function outcome: control transferred, same burst continues.
#: (Disjoint from the interpreter's OUT_* codes 0-3.)
CONTINUE = 4

#: Emission cap per block function.  Bounds generated-code size for
#: pathological straight-line programs; a capped block hands control
#: back with CONTINUE and the next block picks up mid-stream.
MAX_EMIT = 64

#: Fast-path eligible length threshold: grouping one instruction under a
#: hoisted guard saves nothing.
_MIN_RUN = 2

# Opcode integer boundaries, identical to the interpreter's dispatch.
_INT_MAX = 25
_FP_MAX = 39
_BR_MAX = 45
_JMP_MAX = 50
_LOCAL_MAX = 54
_SHARED_MAX = 59

_OPS = {int(op): op for op in Op}

_BRANCH_CMP = {
    Op.BNE: "!=",
    Op.BEQ: "==",
    Op.BLT: "<",
    Op.BGE: ">=",
    Op.BLE: "<=",
    Op.BGT: ">",
}

#: Hoisted locals the generated preamble may need, in emission order.
#: Each entry is (name, statement, prerequisites).
_PREAMBLE = (
    ("sim", "sim = proc.sim", ()),
    ("code", "code = proc.code", ()),
    ("stats", "stats = sim.stats", ("sim",)),
    ("shared", "shared = sim.shared", ("sim",)),
    ("regs", "regs = thread.regs", ()),
    ("local", "local = thread.local", ()),
    ("inflight", "inflight = thread.inflight", ()),
    ("cache", "cache = proc.cache", ()),
    ("lw", "lw = cache.line_words", ("cache",)),
    ("tracer", "tracer = sim.tracer", ("sim",)),
    ("pid", "pid = proc.pid", ()),
    ("tid", "tid = thread.tid", ()),
    ("olc", "olc = proc.oracle[thread.tid]", ()),
    ("forced", "forced = proc.forced_interval", ()),
    # Inlined memory-transaction fast path (untraced, unfaulted variants).
    ("heap", "heap = sim._heap", ("sim",)),
    ("hl", "hl = sim.half_latency", ("sim",)),
    ("lev", "lev = sim._load_event", ("sim",)),
    ("sev", "sev = sim._store_event", ("sim",)),
    ("fev", "fev = sim._faa_event", ("sim",)),
    ("mc", "mc = stats._msg_counts", ("stats",)),
    ("bits", "bits = stats._bits", ("stats",)),
)


class CompiledProgram:
    """Lazily compiled block functions for one (program, variant) pair.

    The variant key is everything the generated code folds in at compile
    time: the machine model code, whether a tracer is attached, whether
    the Section 5.2 oracle is on, whether the model runs a cache, and
    whether a fault plan is active (unfaulted untraced variants inline
    the memory-transaction issue path; faulted ones go through the
    simulator methods so the NACK/retry protocol stays in one place).
    Runtime-configurable values (``switch_cost``, ``forced_interval``,
    burst limit) are read from the processor at execution time, so one
    compiled variant serves every latency / cost configuration.
    """

    __slots__ = ("program", "code", "model", "traced", "oracle_on", "cached",
                 "faulted", "funcs", "compiled_blocks", "compile_seconds")

    def __init__(self, program, model: int, traced: bool, oracle_on: bool,
                 cached: bool, faulted: bool):
        self.program = program
        self.code = program.instructions
        self.model = model
        self.traced = traced
        self.oracle_on = oracle_on
        self.cached = cached
        self.faulted = faulted
        #: One slot per instruction; populated on first dispatch.
        self.funcs: List[Optional[object]] = [None] * len(self.code)
        self.compiled_blocks = 0
        #: Wall-clock seconds spent generating + exec'ing block code
        #: (feeds the ``jit-compile`` span; only the cold compile branch
        #: pays the clock reads, dispatch hits stay one ``is None`` test).
        self.compile_seconds = 0.0

    def ensure(self, pc: int):
        """Compile (if needed) and return the block function entered at *pc*."""
        fn = self.funcs[pc]
        if fn is None:
            started = time.perf_counter()
            fn = _compile_entry(self, pc)
            self.funcs[pc] = fn
            self.compiled_blocks += 1
            self.compile_seconds += time.perf_counter() - started
        return fn

    def source_for(self, pc: int) -> str:
        """The generated source for entry *pc* (debugging / tests)."""
        return _Emitter(self, pc).emit()


def compiled_for(program, model: int, traced: bool, oracle_on: bool,
                 cached: bool, faulted: bool = False) -> CompiledProgram:
    """The (cached) :class:`CompiledProgram` for one program variant.

    Compiled blocks are attached to the :class:`~repro.isa.program.
    Program` object itself, so the per-process program cache
    (:func:`repro.engine.executor._build`) automatically shares compiled
    code across simulations of the same lowered program.
    """
    variants: Dict[Tuple, CompiledProgram]
    variants = getattr(program, "_jit_variants", None)
    if variants is None:
        variants = {}
        program._jit_variants = variants
    key = (model, traced, oracle_on, cached, faulted)
    compiled = variants.get(key)
    if compiled is None:
        compiled = CompiledProgram(program, model, traced, oracle_on, cached,
                                   faulted)
        variants[key] = compiled
    return compiled


def compile_seconds_for(program) -> float:
    """Total codegen wall-clock seconds accumulated on *program* across
    every compiled variant in this process.  Sampling it before and
    after a run attributes that run's compile cost (the delta) — the
    ``jit-compile`` span in :mod:`repro.obs.spans`."""
    variants = getattr(program, "_jit_variants", None)
    if not variants:
        return 0.0
    return sum(cp.compile_seconds for cp in variants.values())


def _compile_entry(cp: CompiledProgram, entry: int):
    source = _Emitter(cp, entry).emit()
    name = getattr(cp.program, "name", "program")
    namespace = {"math": math, "ExecutionError": ExecutionError, "OPS": _OPS,
                 "heappush": heappush}
    exec(compile(source, f"<jit:{name}@{entry}>", "exec"), namespace)
    return namespace["_block"]


def _addr_expr(ins: Instruction) -> str:
    if ins.imm:
        return f"regs[{ins.rs1}] + {ins.imm!r}"
    return f"regs[{ins.rs1}]"


def _int_expr(ins: Instruction) -> Optional[str]:
    """Expression for a non-faulting integer ALU op (None for DIV/REM)."""
    op = ins.op
    r1 = f"regs[{ins.rs1}]"
    r2 = f"regs[{ins.rs2}]"
    imm = repr(ins.imm)
    if op is Op.ADDI:
        return f"{r1} + {imm}"
    if op is Op.ADD:
        return f"{r1} + {r2}"
    if op is Op.LI:
        return imm
    if op is Op.MOV:
        return r1
    if op is Op.SUB:
        return f"{r1} - {r2}"
    if op is Op.SLT:
        return f"1 if {r1} < {r2} else 0"
    if op is Op.SLE:
        return f"1 if {r1} <= {r2} else 0"
    if op is Op.SEQ:
        return f"1 if {r1} == {r2} else 0"
    if op is Op.SNE:
        return f"1 if {r1} != {r2} else 0"
    if op is Op.SLTI:
        return f"1 if {r1} < {imm} else 0"
    if op is Op.MUL:
        return f"{r1} * {r2}"
    if op is Op.MULI:
        return f"{r1} * {imm}"
    if op is Op.AND:
        return f"{r1} & {r2}"
    if op is Op.OR:
        return f"{r1} | {r2}"
    if op is Op.XOR:
        return f"{r1} ^ {r2}"
    if op is Op.SLL:
        return f"{r1} << {r2}"
    if op is Op.SRL or op is Op.SRA:
        return f"{r1} >> {r2}"
    if op is Op.ANDI:
        return f"{r1} & {imm}"
    if op is Op.ORI:
        return f"{r1} | {imm}"
    if op is Op.XORI:
        return f"{r1} ^ {imm}"
    if op is Op.SLLI:
        return f"{r1} << {imm}"
    if op is Op.SRLI:
        return f"{r1} >> {imm}"
    return None  # DIV / REM fault on a zero divisor; emitted as a block


def _fp_expr(ins: Instruction) -> Optional[str]:
    """Expression for a non-faulting FP op (None for FDIV/FSQRT)."""
    op = ins.op
    r1 = f"regs[{ins.rs1}]"
    r2 = f"regs[{ins.rs2}]"
    if op is Op.FADD:
        return f"{r1} + {r2}"
    if op is Op.FSUB:
        return f"{r1} - {r2}"
    if op is Op.FMUL:
        return f"{r1} * {r2}"
    if op is Op.FNEG:
        return f"-{r1}"
    if op is Op.FABS:
        return f"abs({r1})"
    if op is Op.FMOV:
        return r1
    if op is Op.FLI:
        return repr(ins.imm)
    if op is Op.FSLT:
        return f"1 if {r1} < {r2} else 0"
    if op is Op.FSLE:
        return f"1 if {r1} <= {r2} else 0"
    if op is Op.FSEQ:
        return f"1 if {r1} == {r2} else 0"
    if op is Op.CVTIF:
        return f"float({r1})"
    if op is Op.CVTFI:
        return f"math.trunc({r1})"
    return None  # FDIV / FSQRT


class _Emitter:
    """Generates the source of one block function."""

    def __init__(self, cp: CompiledProgram, entry: int):
        self.cp = cp
        self.entry = entry
        self.lines: List[object] = []
        self.targets: List[int] = []
        self.need = set()
        # IDEAL's burst boundaries are fairness yields, not pauses.
        self.pause_out = OUT_YIELD if cp.model == M_IDEAL else OUT_PAUSE
        # Untraced, unfaulted variants mirror the simulator's uncached
        # issue path inline (bit accounting, scoreboard, heap push);
        # traced / faulted ones call the simulator methods so the probe
        # and NACK/retry logic stay in one place.
        self.inline_mem = not cp.traced and not cp.faulted

    # -- low-level helpers -------------------------------------------------------

    def w(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def use(self, *names: str) -> None:
        for name in names:
            self.need.add(name)

    def _nx(self, n: int) -> str:
        """Executed-instruction count at a return site.

        ``_n`` accumulates instructions completed before the current
        region pass (prior loop iterations and region transfers, see
        :meth:`emit`); *n* counts instructions completed since the top
        of the current region on this pass.
        """
        return f"_n + {n}" if n else "_n"

    def _goto(self, ind: int, target: int, n_after: int) -> None:
        """A control transfer to a compile-time-known *target* pc.

        Emitted as a placeholder; :meth:`emit` resolves it to an
        in-function region jump (``_pc = target; continue``) when the
        target region is emitted into this same function, and to a
        ``CONTINUE`` return (dispatch-loop bounce) when it is not.
        """
        self.lines.append(("goto", ind, target, n_after))
        self.targets.append(target)

    def _target(self, rd: int) -> str:
        # r0 is a discarded destination, but the expression must still be
        # evaluated: the interpreter computes ``value`` (and takes any
        # fault) before the ``if ins.rd`` store guard.
        return f"regs[{rd}]" if rd else "_v"

    # -- guards ------------------------------------------------------------------

    def _deadline_guard(self, i: int, n: int, ind: int) -> None:
        self.w(ind, "if t >= deadline:")
        self.w(ind + 1, f"return {self.pause_out}, t, {i}, {self._nx(n)}, t, 0")

    def _inflight_guard(self, ins: Instruction, i: int, n: int, ind: int) -> None:
        slots = list(dict.fromkeys(instr_reads(ins) + instr_writes(ins)))
        if not slots:
            return
        self.use("inflight")
        self.w(ind, "if inflight:")
        self.w(ind + 1, "_b = -1")
        for slot in slots:
            self.w(ind + 1, f"_r = inflight.get({slot})")
            self.w(ind + 1, "if _r is not None and _r > _b:")
            self.w(ind + 2, "_b = _r")
        self.w(ind + 1, "if _b >= 0:")
        self.w(ind + 2, "if _b <= t:")
        self.w(ind + 3, f"return {OUT_PAUSE}, t, {i}, {self._nx(n)}, t, 0")
        if self.cp.model != M_USE and self.cp.model != M_USE_MISS:
            self.use("stats")
            self.w(ind + 2, "stats.implicit_use_switches += 1")
        self.w(ind + 2, f"return {OUT_SWITCH}, t, {i}, {self._nx(n)}, _b, 0")

    def _probe(self, ins: Instruction, i: int, ind: int) -> None:
        if self.cp.traced:
            self.use("tracer", "pid", "tid")
            self.w(ind, f"tracer.instr(t, pid, tid, {i}, OPS[{int(ins.op)}])")

    # -- instruction bodies ------------------------------------------------------

    def _alu_body(self, ins: Instruction, i: int, ind: int) -> None:
        """Integer ALU / FP op body (no guards, no t update)."""
        self.use("regs")
        op = ins.op
        tgt = self._target(ins.rd)
        if op is Op.DIV or op is Op.REM:
            msg = f"pc={i}: integer divide by zero ({ins.to_asm()})"
            self.w(ind, f"_a = regs[{ins.rs1}]")
            self.w(ind, f"_b = regs[{ins.rs2}]")
            self.w(ind, "if _b == 0:")
            self.w(ind + 1, f"raise ExecutionError({msg!r})")
            self.w(ind, "_q = abs(_a) // abs(_b)")
            self.w(ind, "if (_a < 0) != (_b < 0):")
            self.w(ind + 1, "_q = -_q")
            if op is Op.DIV:
                self.w(ind, f"{tgt} = _q")
            else:
                self.w(ind, f"{tgt} = _a - _q * _b")
            return
        if op is Op.FDIV:
            msg = f"pc={i}: float divide by zero ({ins.to_asm()})"
            self.w(ind, f"_b = regs[{ins.rs2}]")
            self.w(ind, "if _b == 0:")
            self.w(ind + 1, f"raise ExecutionError({msg!r})")
            self.w(ind, f"{tgt} = regs[{ins.rs1}] / _b")
            return
        if op is Op.FSQRT:
            msg = f"pc={i}: sqrt of negative value ({ins.to_asm()})"
            self.w(ind, f"_a = regs[{ins.rs1}]")
            self.w(ind, "if _a < 0:")
            self.w(ind + 1, f"raise ExecutionError({msg!r})")
            self.w(ind, f"{tgt} = math.sqrt(_a)")
            return
        expr = _int_expr(ins) if int(op) <= _INT_MAX else _fp_expr(ins)
        self.w(ind, f"{tgt} = {expr}")

    def _local_body(self, ins: Instruction, ind: int) -> None:
        """Local-memory op body (no guards, no t update)."""
        op = ins.op
        addr = _addr_expr(ins)
        if op is Op.LWL:
            if ins.rd:
                self.use("regs", "local")
                self.w(ind, f"regs[{ins.rd}] = local[{addr}]")
        elif op is Op.SWL:
            self.use("regs", "local")
            self.w(ind, f"local[{addr}] = regs[{ins.rs2}]")
        elif op is Op.LDL:
            if ins.rd:
                self.use("regs", "local")
                self.w(ind, f"_addr = {addr}")
                self.w(ind, f"regs[{ins.rd}] = local[_addr]")
                self.w(ind, f"regs[{ins.rd + 1}] = local[_addr + 1]")
        else:  # SDL
            self.use("regs", "local")
            self.w(ind, f"_addr = {addr}")
            self.w(ind, f"local[_addr] = regs[{ins.rs2}]")
            self.w(ind, f"local[_addr + 1] = regs[{ins.rs2 + 1}]")

    def _ideal_shared_body(self, ins: Instruction, ind: int) -> None:
        """Zero-latency shared op, executed eagerly (no guards/t update)."""
        op = ins.op
        addr = _addr_expr(ins)
        if op is Op.LWS:
            if ins.rd:
                self.use("regs", "shared")
                self.w(ind, f"regs[{ins.rd}] = shared[{addr}]")
        elif op is Op.SWS:
            self.use("regs", "shared")
            self.w(ind, f"shared[{addr}] = regs[{ins.rs2}]")
        elif op is Op.LDS:
            if ins.rd:
                self.use("regs", "shared")
                self.w(ind, f"_addr = {addr}")
                self.w(ind, f"regs[{ins.rd}] = shared[_addr]")
                self.w(ind, f"regs[{ins.rd + 1}] = shared[_addr + 1]")
        elif op is Op.SDS:
            self.use("regs", "shared")
            self.w(ind, f"_addr = {addr}")
            self.w(ind, f"shared[_addr] = regs[{ins.rs2}]")
            self.w(ind, f"shared[_addr + 1] = regs[{ins.rs2 + 1}]")
        else:  # FAA
            self.use("regs", "shared")
            self.w(ind, f"_addr = {addr}")
            self.w(ind, "_old = shared[_addr]")
            self.w(ind, f"shared[_addr] = _old + regs[{ins.rs2}]")
            if ins.rd:
                self.w(ind, f"regs[{ins.rd}] = _old")

    # -- full (guarded) instruction emitters -------------------------------------

    def _count_message(self, kind: MsgKind, sync: bool, ind: int) -> None:
        """Mirror ``SimStats.count_message`` inline (*sync* folds at
        compile time, bits come from the per-run precomputed table)."""
        self.use("stats", "bits")
        self.w(ind, f"_f, _r = bits[{kind.index}]")
        if sync:
            self.w(ind, "stats.sync_msgs += 1")
            self.w(ind, "stats.sync_bits += _f + _r")
        else:
            self.use("mc")
            self.w(ind, f"mc[{kind.index}] += 1")
            self.w(ind, "stats.fwd_bits += _f")
            self.w(ind, "stats.ret_bits += _r")

    def _emit_store(self, ins: Instruction, i: int, ind: int) -> None:
        """Non-ideal SWS/SDS: fire-and-forget, never breaks the burst."""
        self.use("regs", "sim")
        double = ins.op is Op.SDS
        sync = bool(ins.sync)
        self.w(ind, f"_addr = {_addr_expr(ins)}")
        self.w(ind, f"_v0 = regs[{ins.rs2}]")
        if double:
            self.w(ind, f"_v1 = regs[{ins.rs2 + 1}]")
            values = "(_v0, _v1)"
        else:
            values = "(_v0,)"
        if self.cp.cached:
            self.use("cache", "lw", "pid")
            self.w(ind, "cache.update_if_present(_addr, _v0)")
            if double:
                self.w(ind, "cache.update_if_present(_addr + 1, _v1)")
            self.w(ind, "_first = _addr // lw")
            if double:
                self.w(ind, "_last = (_addr + 1) // lw")
            else:
                self.w(ind, "_last = _first")
            self.w(ind, (
                "_comb = _first == proc.wc_line and _last == _first "
                "and t - proc.wc_time <= 8"
            ))
            self.w(ind, "proc.wc_line = _last")
            self.w(ind, "proc.wc_time = t")
            self.w(ind, (
                f"sim.write_through(t, _addr, {values}, pid, {sync}, "
                "combined=_comb)"
            ))
        elif self.inline_mem:
            # Mirror ``Simulator.mem_store`` (stores have no fault path,
            # and the untraced variant has no probe to fire).
            kind = MsgKind.WRITE2 if double else MsgKind.WRITE
            self._count_message(kind, sync, ind)
            self.use("heap", "hl", "sev")
            self.w(ind, "sim._seq = _s = sim._seq + 1")
            self.w(ind, f"heappush(heap, (t + hl, 0, _s, sev, (_addr, {values})))")
        else:
            self.use("tid")
            self.w(ind, f"sim.mem_store(t, _addr, {values}, {sync}, tid)")
        self.w(ind, f"t += {ins.cost}")

    def _emit_inline_issue(self, ins: Instruction, ind: int) -> None:
        """Mirror ``Simulator.mem_load`` / ``mem_faa`` inline for the
        untraced, unfaulted variant: bit accounting with a compile-time
        message kind, the split-phase scoreboard stamps, and a direct
        heap push of the (fault-free) completion event."""
        op = ins.op
        if op is Op.FAA:
            kind, nwords = MsgKind.FAA, 1
        elif op is Op.LDS:
            kind, nwords = MsgKind.READ2, 2
        else:
            kind, nwords = MsgKind.READ, 1
        dest = ins.rd
        self._count_message(kind, bool(ins.sync), ind)
        self.use("stats", "inflight", "heap", "hl")
        self.w(ind, "stats.mem_issued += 1")
        self.w(ind, "_rt = sim._fixed_rt")
        self.w(ind, (
            "_ready = t + (_rt if _rt is not None "
            "else sim._round_trip(t, _addr))"
        ))
        self.w(ind, f"inflight[{dest}] = _ready")
        if op is not Op.FAA and nwords == 2:
            self.w(ind, f"inflight[{dest + 1}] = _ready")
        self.w(ind, "if _ready > thread.pending_until:")
        self.w(ind + 1, "thread.pending_until = _ready")
        self.w(ind, "sim._seq = _s = sim._seq + 1")
        if op is Op.FAA:
            self.use("fev")
            self.w(ind, (
                "heappush(heap, (t + hl, 0, _s, fev, "
                f"(_addr, thread, {dest}, regs[{ins.rs2}], _ready, 0)))"
            ))
        else:
            self.use("lev")
            self.w(ind, (
                "heappush(heap, (t + hl, 0, _s, lev, "
                f"(_addr, {nwords}, thread, {dest}, _ready, 0)))"
            ))

    def _emit_uncached_issue(self, ins: Instruction, i: int, n: int,
                             ind: int) -> bool:
        """Issue an uncached load / FAA transaction; True if control can
        fall through to the next instruction."""
        cp = self.cp
        op = ins.op
        self.use("sim")
        if op is Op.FAA and cp.cached:
            # F&A mutates memory directly: drop our own stale copy.
            self.use("cache", "lw")
            self.w(ind, "cache.invalidate(_addr // lw)")
        if self.inline_mem:
            self._emit_inline_issue(ins, ind)
        elif op is Op.FAA:
            self.w(ind, (
                f"sim.mem_faa(t, _addr, thread, {ins.rd}, "
                f"regs[{ins.rs2}], {bool(ins.sync)})"
            ))
        else:
            nwords = 2 if op is Op.LDS else 1
            self.w(ind, (
                f"sim.mem_load(t, _addr, {nwords}, thread, {ins.rd}, "
                f"{bool(ins.sync)})"
            ))
        self.w(ind, f"t += {ins.cost}")
        if cp.model == M_SOL or (cp.model == M_MISS and op is Op.FAA):
            self.w(ind, (
                f"return {OUT_SWITCH}, t, {i + 1}, {self._nx(n + 1)}, "
                "thread.pending_until, proc.switch_cost"
            ))
            return False
        return True

    def _emit_shared(self, ins: Instruction, i: int, n: int, ind: int) -> bool:
        """Shared-memory op; returns True if control falls through."""
        cp = self.cp
        op = ins.op
        self.use("regs")
        if cp.model == M_IDEAL:
            self._ideal_shared_body(ins, ind)
            self.w(ind, f"t += {ins.cost}")
            return True

        if op is Op.SWS or op is Op.SDS:
            self._emit_store(ins, i, ind)
            return True

        if op is Op.FAA or not cp.cached:
            self.w(ind, f"_addr = {_addr_expr(ins)}")
            oracle = (
                cp.oracle_on and op is not Op.FAA and not ins.sync
                and not cp.cached
            )
            if oracle:
                # Section 5.2 estimator: a load grouped with the thread's
                # preceding reference is modelled as already prefetched.
                self.use("olc", "shared")
                self.w(ind, "if olc.access(_addr):")
                if ins.rd:
                    self.w(ind + 1, f"regs[{ins.rd}] = shared[_addr]")
                    if op is Op.LDS:
                        self.w(ind + 1, f"regs[{ins.rd + 1}] = shared[_addr + 1]")
                self.w(ind + 1, f"t += {ins.cost}")
                self.w(ind, "else:")
                self._emit_uncached_issue(ins, i, n, ind + 1)
                return True  # the miss arm returned or both arms advanced t
            return self._emit_uncached_issue(ins, i, n, ind)

        # Cached load (LWS / LDS).
        nwords = 2 if op is Op.LDS else 1
        sync = bool(ins.sync)
        self.use("cache")
        self.w(ind, f"_addr = {_addr_expr(ins)}")
        self.w(ind, "_first = cache.lookup(_addr)")
        if nwords == 2:
            self.w(ind, (
                "_second = cache.lookup(_addr + 1) "
                "if _first is not None else None"
            ))
            self.w(ind, "if _second is not None:")
        else:
            self.w(ind, "if _first is not None:")
        hit = ind + 1
        if ins.rd:
            self.w(hit, f"regs[{ins.rd}] = _first")
            if nwords == 2:
                self.w(hit, f"regs[{ins.rd + 1}] = _second")
        if self.cp.traced:
            self.use("tracer", "pid", "tid")
            self.w(hit, "tracer.cache_hit(t, pid, tid, _addr)")
        if not sync:
            self.use("stats")
            self.w(hit, "stats.cache_hits += 1")
        self.w(hit, f"t += {ins.cost}")
        if cp.model == M_MISS or cp.model == M_USE_MISS:
            # Starvation guard for models without SWITCH opcodes.
            self.use("forced", "stats")
            self.w(hit, "if forced and run0 + t >= forced:")
            self.w(hit + 1, "stats.forced_switches += 1")
            if self.cp.traced:
                self.w(hit + 1, "tracer.switch_forced(t, pid, tid)")
            self.w(hit + 1,
                   f"return {OUT_SWITCH}, t, {i + 1}, {self._nx(n + 1)}, t, 0")
        self.w(ind, "else:")
        miss = ind + 1
        self.use("sim", "pid")
        self.w(miss, (
            f"_issued = sim.cached_load(t, _addr, {nwords}, thread, "
            f"{ins.rd}, pid, {sync})"
        ))
        if self.cp.traced:
            self.w(miss, "if _issued:")
            self.w(miss + 1, "tracer.cache_miss(t, pid, tid, _addr)")
            self.w(miss, "else:")
            self.w(miss + 1, "tracer.cache_merge(t, pid, tid, _addr)")
        if not sync:
            self.use("stats")
            self.w(miss, "stats.cache_misses += 1")
            self.w(miss, "if not _issued:")
            self.w(miss + 1, "stats.cache_merged += 1")
        self.w(miss, f"t += {ins.cost}")
        if cp.model == M_MISS:
            self.w(miss, (
                f"return {OUT_SWITCH}, t, {i + 1}, {self._nx(n + 1)}, "
                "thread.pending_until, proc.switch_cost"
            ))
        return True

    def _emit_switch_op(self, ins: Instruction, i: int, n: int, ind: int) -> bool:
        """SWITCH opcode; returns True if control falls through."""
        cp = self.cp
        self.w(ind, "t += 1")
        if cp.model == M_COND or (cp.model == M_EXPLICIT and cp.oracle_on):
            self.use("stats", "forced")
            self.w(ind, "if thread.pending_until > t:")
            self.w(ind + 1, (
                f"return {OUT_SWITCH}, t, {i + 1}, {self._nx(n + 1)}, "
                "thread.pending_until, 0"
            ))
            self.w(ind, "if forced and run0 + t >= forced:")
            self.w(ind + 1, "stats.forced_switches += 1")
            if cp.traced:
                self.use("tracer", "pid", "tid")
                self.w(ind + 1, "tracer.switch_forced(t, pid, tid)")
            self.w(ind + 1,
                   f"return {OUT_SWITCH}, t, {i + 1}, {self._nx(n + 1)}, t, 0")
            self.w(ind, "stats.skipped_switches += 1")
            if cp.traced:
                self.w(ind, "tracer.switch_skipped(t, pid, tid)")
            return True
        if cp.model in (M_EXPLICIT, M_SOL, M_USE):
            self.w(ind, "_resume = thread.pending_until")
            self.w(ind, "if _resume < t:")
            self.w(ind + 1, "_resume = t")
            self.w(ind,
                   f"return {OUT_SWITCH}, t, {i + 1}, {self._nx(n + 1)}, _resume, 0")
            return False
        return True  # IDEAL / MISS / USE_MISS ignore stray SWITCH opcodes

    def _emit_one(self, i: int, n: int, ind: int) -> Tuple[bool, int]:
        """Emit instruction *i* with full guards; returns
        ``(falls_through, next_pc)``."""
        ins = self.cp.code[i]
        v = int(ins.op)
        self._deadline_guard(i, n, ind)
        self._inflight_guard(ins, i, n, ind)
        self._probe(ins, i, ind)

        if v <= _FP_MAX:  # integer ALU / FP
            self._alu_body(ins, i, ind)
            self.w(ind, f"t += {ins.cost}")
            return True, i + 1

        if v <= _BR_MAX:  # conditional branches
            self.use("regs")
            cmp = _BRANCH_CMP[ins.op]
            self.w(ind, "t += 1")
            self.w(ind, f"if regs[{ins.rs1}] {cmp} regs[{ins.rs2}]:")
            self._goto(ind + 1, ins.target, n + 1)
            return True, i + 1

        if v <= _JMP_MAX:  # J / JAL / JR / NOP / HALT
            op = ins.op
            if op is Op.NOP:
                self.w(ind, "t += 1")
                return True, i + 1
            if op is Op.HALT:
                self.w(ind, f"return {OUT_HALT}, t, {i}, {self._nx(n)}, t, 0")
                return False, i + 1
            if op is Op.J:
                self.w(ind, "t += 1")
                self._goto(ind, ins.target, n + 1)
            elif op is Op.JAL:
                self.use("regs")
                self.w(ind, f"regs[31] = {i + 1}")
                self.w(ind, "t += 1")
                self._goto(ind, ins.target, n + 1)
            else:  # JR: computed target, always a dispatch-loop bounce
                self.use("regs")
                self.w(ind, f"_jr = regs[{ins.rs1}]")
                self.w(ind, "t += 1")
                self.w(ind, f"return {CONTINUE}, t, _jr, {self._nx(n + 1)}, 0, 0")
            return False, i + 1

        if v <= _LOCAL_MAX:  # local memory
            self._local_body(ins, ind)
            self.w(ind, f"t += {ins.cost}")
            return True, i + 1

        if v <= _SHARED_MAX:  # shared memory
            return self._emit_shared(ins, i, n, ind), i + 1

        return self._emit_switch_op(ins, i, n, ind), i + 1

    # -- fast path ---------------------------------------------------------------

    def _fast_eligible(self, ins: Instruction) -> bool:
        """Ops groupable under one hoisted guard: they never end the
        burst, never branch, never touch the in-flight scoreboard or the
        simulated clock mid-body.  Tracing disables grouping entirely —
        the per-instruction probe needs an exact per-instruction ``t``."""
        v = int(ins.op)
        return v <= _FP_MAX or ins.op is Op.NOP or (_JMP_MAX < v <= _LOCAL_MAX)

    def _fast_run(self, start: int, limit: int) -> int:
        """Length of the maximal fast-path run beginning at *start*."""
        code = self.cp.code
        end = min(len(code), start + limit)
        i = start
        while i < end and self._fast_eligible(code[i]):
            i += 1
        return i - start

    def _emit_fast(self, start: int, length: int, n: int, ind: int) -> int:
        """Emit a grouped run; returns the new executed-instruction count.

        Fast arm: one check proves every per-instruction deadline check
        in the run would pass (``t`` only grows, so the last check — at
        ``t + cost(all but last)`` — dominates) and one emptiness check
        covers every scoreboard probe (these ops never mutate the
        scoreboard).  Slow arm: the exact interpreter sequence, taken
        whenever a pause/switch could land inside the run.
        """
        code = self.cp.code
        run = code[start:start + length]
        total = sum(ins.cost for ins in run)
        pre = total - run[-1].cost
        self.use("inflight")
        if pre:
            self.w(ind, f"if not inflight and t + {pre} < deadline:")
        else:
            self.w(ind, "if not inflight and t < deadline:")
        for offset, ins in enumerate(run):
            i = start + offset
            if int(ins.op) <= _FP_MAX:
                self._alu_body(ins, i, ind + 1)
            elif ins.op is Op.NOP:
                pass
            else:
                self._local_body(ins, ind + 1)
        self.w(ind + 1, f"t += {total}")
        self.w(ind, "else:")
        nn = n
        for offset, ins in enumerate(run):
            i = start + offset
            self._deadline_guard(i, nn, ind + 1)
            self._inflight_guard(ins, i, nn, ind + 1)
            if int(ins.op) <= _FP_MAX:
                self._alu_body(ins, i, ind + 1)
            elif ins.op is not Op.NOP:
                self._local_body(ins, ind + 1)
            self.w(ind + 1, f"t += {ins.cost}")
            nn += 1
        return nn

    # -- top level ---------------------------------------------------------------

    def _emit_region(self, start: int, budget: int) -> int:
        """Emit one region (basic-block chain) starting at *start* into
        ``self.lines`` at relative indent 0; returns the remaining
        instruction budget.  Control transfers to compile-time-known
        targets go through :meth:`_goto` placeholders."""
        cp = self.cp
        code = cp.code
        pc = start
        n = 0
        while True:
            if pc >= len(code):
                # Fell off the end: the interpreter checks the deadline,
                # then faults on the fetch.  Lint-clean programs never
                # get here (isa-fall-off-end).
                self._deadline_guard(pc, n, 0)
                self.use("code")
                self.w(0, f"_ = code[{pc}]")
                return budget
            if budget <= 0:
                self.w(0, f"return {CONTINUE}, t, {pc}, {self._nx(n)}, 0, 0")
                return 0
            if not cp.traced:
                length = self._fast_run(pc, budget)
                if length >= _MIN_RUN:
                    n = self._emit_fast(pc, length, n, 0)
                    pc += length
                    budget -= length
                    continue
            falls, next_pc = self._emit_one(pc, n, 0)
            n += 1
            budget -= 1
            if not falls:
                return budget
            pc = next_pc

    def emit(self) -> str:
        """Assemble the block function: a region state machine.

        The entry region plus (budget permitting) the regions for every
        compile-time-known branch/jump target it can reach are emitted
        into one function body, inside ``while True:``.  A transfer to
        an in-function region is ``_pc = target; continue`` — re-running
        that region's own guards at its top, exactly as a fresh dispatch
        would — so loops (including multi-block loops) iterate without
        bouncing through the dispatch loop.  Transfers to targets left
        out of the function return ``CONTINUE`` and the driver picks the
        next block.  With a single region the ``_pc`` dispatch collapses
        to a bare loop.
        """
        regions: List[Tuple[int, List[object]]] = []
        seen = {self.entry}
        pending = [self.entry]
        budget = MAX_EMIT
        while pending and budget > 0:
            start = pending.pop(0)
            self.lines = []
            budget = self._emit_region(start, budget)
            regions.append((start, self.lines))
            for target in self.targets:
                if target not in seen:
                    seen.add(target)
                    pending.append(target)
            self.targets = []

        included = {start for start, _ in regions}
        multi = len(regions) > 1
        base = 3 if multi else 2

        def resolve(lines: List[object], extra: int) -> List[str]:
            pad0 = "    " * extra
            out = []
            for line in lines:
                if isinstance(line, str):
                    out.append(pad0 + line)
                    continue
                _kind, ind, target, n_after = line
                pad = "    " * (extra + ind)
                if target in included:
                    out.append(f"{pad}_n += {n_after}")
                    if multi:
                        out.append(f"{pad}_pc = {target}")
                    out.append(f"{pad}continue")
                else:
                    out.append(
                        f"{pad}return {CONTINUE}, t, {target}, "
                        f"_n + {n_after}, 0, 0"
                    )
            return out

        body: List[str] = []
        if multi:
            kw = "if"
            for start, lines in regions:
                body.append(f"        {kw} _pc == {start}:")
                body.extend(resolve(lines, base))
                kw = "elif"
        else:
            body.extend(resolve(regions[0][1], base))

        # Order the preamble and close over only what the body touches.
        prologue: List[str] = []
        done = set()

        def hoist(name: str) -> None:
            if name in done:
                return
            for cand, stmt, prereqs in _PREAMBLE:
                if cand == name:
                    for prereq in prereqs:
                        hoist(prereq)
                    prologue.append("    " + stmt)
                    done.add(name)
                    return

        for name, _stmt, _prereqs in _PREAMBLE:
            if name in self.need:
                hoist(name)
        header = ["def _block(proc, thread, t, deadline, run0):"]
        prologue.append("    _n = 0")
        if multi:
            prologue.append(f"    _pc = {self.entry}")
        prologue.append("    while True:")
        return "\n".join(header + prologue + body) + "\n"
