"""The compiled backend's processor: block dispatch over generated code.

:class:`CompiledProcessor` is a drop-in :class:`~repro.machine.processor.
Processor` whose ``_burst`` dispatches pre-compiled block functions
(:mod:`repro.jit.codegen`) instead of interpreting instruction by
instruction.  Everything around the hot loop — event entry points,
round-robin scheduling, the NACK/retry protocol, switch-every-cycle's
one-instruction bursts — is inherited unchanged, and the burst
bookkeeping below is a line-for-line copy of the interpreter's, so the
two backends produce bit-identical :class:`~repro.machine.stats.SimStats`
and tracer event streams.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.cache import Cache
from heapq import heappush

from repro.machine.processor import (
    OUT_HALT,
    OUT_PAUSE,
    OUT_SWITCH,
    Processor,
)
from repro.machine.thread import ThreadContext
from repro.jit.codegen import CONTINUE, compiled_for


class CompiledProcessor(Processor):
    """One multithreaded processor executing compiled block functions."""

    def __init__(
        self,
        sim,
        pid: int,
        threads: List[ThreadContext],
        cache: Optional[Cache],
    ):
        super().__init__(sim, pid, threads, cache)
        if self._sec:
            # Switch-every-cycle runs one-instruction bursts: block
            # dispatch has nothing to amortize its per-call preamble
            # over, so the interpreter's per-instruction path is the
            # faster engine.  Bind it as the burst used by the inherited
            # ``_burst_sec`` wrapper (trivially bit-identical).
            self._burst = super()._burst
            self._compiled = None
            self._funcs = None
            return
        self._compiled = compiled_for(
            sim.program,
            model=self.model,
            traced=sim.tracer is not None,
            oracle_on=self.oracle is not None,
            cached=cache is not None,
            faulted=sim._fault_plan is not None,
        )
        self._funcs = self._compiled.funcs

    def dispatch_event(self, now: int, _arg=None) -> None:
        """Heap event: one burst, bookkeeping, and rescheduling, fused.

        Folds ``Processor.dispatch_event`` + :meth:`_burst` into a
        single frame — block dispatch is the compiled backend's hot
        path, and the stage-to-stage call overhead is measurable at one
        dispatch per burst.  Every bookkeeping and scheduling statement
        is a verbatim copy; the tracer event order (``switch_taken`` /
        ``thread_halt`` before ``burst``) matches the split original.
        """
        if self._sec:
            Processor.dispatch_event(self, now, _arg)
            return
        thread = self.threads[self.cur]
        funcs = self._funcs

        t = now
        deadline = now + self.burst_limit
        pc = thread.pc
        run0 = thread.run_cycles - now  # run length = run0 + t at any point
        n_instr = 0
        while True:
            fn = funcs[pc]
            if fn is None:
                fn = self._compiled.ensure(pc)
            outcome, t, pc, n, resume, flush = fn(self, thread, t, deadline, run0)
            n_instr += n
            if outcome != CONTINUE:
                break

        sim = self.sim
        stats = sim.stats
        tracer = sim.tracer
        elapsed = t - now
        self.busy_cycles += elapsed
        stats.busy_cycles += elapsed
        stats.instructions += n_instr
        thread.pc = pc

        if outcome == OUT_SWITCH:
            stats.switches += 1
            run = run0 + t  # inlined stats.record_run
            if run > 0:
                stats.run_lengths[run] += 1
            thread.run_cycles = 0
            thread.resume_time = resume
            if tracer is not None:
                tracer.switch_taken(t, self.pid, thread.tid, resume)
            if flush:
                stats.switch_overhead_cycles += flush
                t += flush
            if tracer is not None:
                tracer.burst(now, self.pid, thread.tid, t, OUT_SWITCH)
            self._schedule_next(t)
            return
        if outcome == OUT_HALT:
            stats.record_run(run0 + t)
            thread.run_cycles = 0
            thread.halted = True
            thread.halt_time = t
            sim.thread_halted(t)
            if tracer is not None:
                tracer.thread_halt(t, self.pid, thread.tid)
                tracer.burst(now, self.pid, thread.tid, t, OUT_HALT)
            self._schedule_next(t)
            return
        # PAUSE / YIELD: the run continues across the boundary.
        thread.run_cycles = run0 + t
        thread.resume_time = resume
        if tracer is not None:
            tracer.burst(now, self.pid, thread.tid, t, outcome)
        if outcome == OUT_PAUSE:
            # Inlined sim.schedule (priority 2), as in the base class.
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap, (t, 2, seq, self.dispatch_event, None))
        else:
            self._schedule_next(t)

    def _burst(self, thread: ThreadContext, now: int):
        """Dispatch block functions until a burst-ending outcome.

        Mirrors ``Processor._burst``: the block functions carry the
        per-instruction semantics; this loop carries the burst state and
        the (identical) end-of-burst bookkeeping.  The fused
        :meth:`dispatch_event` above is the hot entry; this method stays
        the standalone burst engine (and the ``_burst_sec`` callee).
        """
        funcs = self._funcs
        ensure = self._compiled.ensure

        t = now
        deadline = now + self.burst_limit
        pc = thread.pc
        run0 = thread.run_cycles - now  # run length = run0 + t at any point
        n_instr = 0

        while True:
            fn = funcs[pc]
            if fn is None:
                fn = ensure(pc)
            outcome, t, pc, n, resume, flush = fn(self, thread, t, deadline, run0)
            n_instr += n
            if outcome != CONTINUE:
                break

        # -- burst bookkeeping (verbatim from the interpreter) ----------------
        sim = self.sim
        stats = sim.stats
        tracer = sim.tracer
        elapsed = t - now
        self.busy_cycles += elapsed
        stats.busy_cycles += elapsed
        stats.instructions += n_instr
        thread.pc = pc

        if outcome == OUT_SWITCH:
            stats.switches += 1
            run = run0 + t  # inlined stats.record_run
            if run > 0:
                stats.run_lengths[run] += 1
            thread.run_cycles = 0
            thread.resume_time = resume
            if tracer is not None:
                tracer.switch_taken(t, self.pid, thread.tid, resume)
            if flush:
                stats.switch_overhead_cycles += flush
                return OUT_SWITCH, t + flush
            return OUT_SWITCH, t
        if outcome == OUT_HALT:
            stats.record_run(run0 + t)
            thread.run_cycles = 0
            thread.halted = True
            thread.halt_time = t
            sim.thread_halted(t)
            if tracer is not None:
                tracer.thread_halt(t, self.pid, thread.tid)
            return OUT_HALT, t
        # PAUSE / YIELD: the run continues across the boundary.
        thread.run_cycles = run0 + t
        thread.resume_time = resume
        return outcome, t
