"""The probe API: what the machine calls when something happens.

A tracer is any object with the emit methods below.  The contract with
the hot paths is strict: when tracing is disabled the *only* cost the
machine pays is one attribute check (``if tracer is not None``) — the
:class:`~repro.machine.simulator.Simulator` normalises any tracer whose
``enabled`` flag is false to ``None`` at construction time, so a
disabled tracer and no tracer are indistinguishable to the interpreter
loop (``benchmarks/bench_tracer_overhead.py`` asserts this costs <3%).

Three implementations ship:

* :class:`Tracer` — the no-op base; every emit method does nothing, so a
  subclass overrides only the probes it cares about;
* :class:`NullTracer` — a disabled tracer (``enabled = False``);
* :class:`RingTracer` — records every event into a bounded
  :class:`~repro.obs.events.RingBuffer` and issues memory-transaction
  ids, feeding the exporters in :mod:`repro.obs.chrome` and the metrics
  derivation in :mod:`repro.obs.metrics`;
* :class:`TimelineTracer` — records only burst events (what the old
  ``MachineConfig.record_timeline`` flag captured) into an unbounded
  list.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.events import EventKind, MEMORY_SIDE, RingBuffer, TraceEvent, bursts


class Tracer:
    """No-op probe sink; subclass and override the probes you need.

    Every method is called with the simulated cycle first.  ``mem_issue``
    must return an integer transaction id (``0`` is fine for sinks that
    do not correlate issues with completions).
    """

    #: Tracers with ``enabled = False`` are dropped by the simulator at
    #: construction time — the hot paths then see ``tracer is None``.
    enabled = True

    # -- processor-side probes -------------------------------------------------

    def instr(self, time: int, pid: int, tid: int, pc: int, op: int) -> None:
        """One instruction executed (cycle = start of execution)."""

    def burst(self, start: int, pid: int, tid: int, end: int, outcome: int) -> None:
        """One dispatch burst ran *tid* on *pid* over ``[start, end)``."""

    def switch_taken(self, time: int, pid: int, tid: int, resume: int) -> None:
        """A context switch was taken; the thread resumes at *resume*."""

    def switch_skipped(self, time: int, pid: int, tid: int) -> None:
        """A conditional SWITCH fell through (no load outstanding)."""

    def switch_forced(self, time: int, pid: int, tid: int) -> None:
        """The forced-interval starvation guard (Section 6.2) fired."""

    def thread_halt(self, time: int, pid: int, tid: int) -> None:
        """Thread *tid* executed HALT."""

    # -- cache probes ----------------------------------------------------------

    def cache_hit(self, time: int, pid: int, tid: int, addr: int) -> None:
        """Shared load hit in *pid*'s cache."""

    def cache_miss(self, time: int, pid: int, tid: int, addr: int) -> None:
        """Shared load missed in *pid*'s cache."""

    def cache_merge(self, time: int, pid: int, tid: int, addr: int) -> None:
        """Miss merged onto an outstanding line fill (MSHR secondary)."""

    def cache_evict(self, time: int, pid: int, line: int) -> None:
        """Installing a fill evicted *line* from *pid*'s cache."""

    def invalidate(self, time: int, pid: int, line: int) -> None:
        """The directory invalidated *pid*'s copy of *line*."""

    # -- memory-transaction probes ---------------------------------------------

    def mem_issue(
        self, time: int, pid: int, tid: int, msg: str, addr: int, latency: int
    ) -> int:
        """A shared-memory transaction left the processor; returns its id.

        *msg* is a :class:`~repro.machine.network.MsgKind` name; the
        response (if the kind has one) arrives at ``time + latency``.
        """
        return 0

    def mem_complete(self, time: int, pid: int, tid: int, txn: int) -> None:
        """Transaction *txn*'s response was delivered."""

    def faa_combine(self, time: int, addr: int, old, addend) -> None:
        """A Fetch-and-Add was applied atomically at the memory module."""

    # -- fault-injection probes (see repro.faults) -----------------------------

    def mem_nack(
        self, time: int, pid: int, tid: int, txn: int, attempt: int, backoff: int
    ) -> None:
        """Transaction *txn*'s reply was lost; retry after *backoff* cycles."""

    def mem_retry(self, time: int, pid: int, tid: int, txn: int, attempt: int) -> None:
        """Retry *attempt* of transaction *txn* reissued (a fresh
        ``mem_issue`` with a new id follows immediately)."""

    def faa_replay(self, time: int, addr: int, txn: int) -> None:
        """A retried Fetch-and-Add was answered from the replay buffer
        instead of being applied a second time."""

    # -- component-lifecycle probes (see repro.faults.lifecycle) ---------------

    def component_degrade(self, time: int, component: int, stage: int) -> None:
        """Memory *component* entered DEGRADED stage *stage*."""

    def component_fail(self, time: int, component: int) -> None:
        """Memory *component* failed hard (requests NACK until repair)."""

    def component_repair(self, time: int, component: int) -> None:
        """Memory *component* finished repairing and is serving again."""


class NullTracer(Tracer):
    """A tracer that is switched off: the machine treats it as absent."""

    enabled = False


class TimelineTracer(Tracer):
    """Burst-only recording (the old ``record_timeline`` behaviour)."""

    def __init__(self):
        self._bursts: List[Tuple[int, int, int, int, int]] = []

    def burst(self, start: int, pid: int, tid: int, end: int, outcome: int) -> None:
        self._bursts.append((start, pid, tid, end, outcome))

    def burst_tuples(self) -> List[Tuple[int, int, int, int, int]]:
        return list(self._bursts)


class RingTracer(Tracer):
    """Record every probe into a bounded ring of typed events.

    :param capacity: maximum events retained (oldest dropped first);
        ``None`` keeps everything.  The default fits any small-scale run
        while bounding memory on big ones.
    """

    def __init__(self, capacity: Optional[int] = 1_000_000):
        self.buffer = RingBuffer(capacity)
        self._next_txn = 0

    # -- access ----------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return self.buffer.to_list()

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (0 = the trace is complete)."""
        return self.buffer.dropped

    @property
    def total_events(self) -> int:
        return self.buffer.total

    def burst_tuples(self) -> List[Tuple[int, int, int, int, int]]:
        """Burst events as timeline tuples (see :mod:`repro.tools.timeline`)."""
        return list(bursts(self.buffer))

    def clear(self) -> None:
        self.buffer.clear()
        self._next_txn = 0

    # -- probes ----------------------------------------------------------------

    def instr(self, time, pid, tid, pc, op):
        self.buffer.append(TraceEvent(time, EventKind.INSTR, pid, tid, (pc, op)))

    def burst(self, start, pid, tid, end, outcome):
        self.buffer.append(
            TraceEvent(start, EventKind.BURST, pid, tid, (end, outcome))
        )

    def switch_taken(self, time, pid, tid, resume):
        self.buffer.append(
            TraceEvent(time, EventKind.SWITCH_TAKEN, pid, tid, (resume,))
        )

    def switch_skipped(self, time, pid, tid):
        self.buffer.append(TraceEvent(time, EventKind.SWITCH_SKIPPED, pid, tid, ()))

    def switch_forced(self, time, pid, tid):
        self.buffer.append(TraceEvent(time, EventKind.SWITCH_FORCED, pid, tid, ()))

    def thread_halt(self, time, pid, tid):
        self.buffer.append(TraceEvent(time, EventKind.THREAD_HALT, pid, tid, ()))

    def cache_hit(self, time, pid, tid, addr):
        self.buffer.append(TraceEvent(time, EventKind.CACHE_HIT, pid, tid, (addr,)))

    def cache_miss(self, time, pid, tid, addr):
        self.buffer.append(TraceEvent(time, EventKind.CACHE_MISS, pid, tid, (addr,)))

    def cache_merge(self, time, pid, tid, addr):
        self.buffer.append(TraceEvent(time, EventKind.CACHE_MERGE, pid, tid, (addr,)))

    def cache_evict(self, time, pid, line):
        self.buffer.append(TraceEvent(time, EventKind.CACHE_EVICT, pid, -1, (line,)))

    def invalidate(self, time, pid, line):
        self.buffer.append(TraceEvent(time, EventKind.INVALIDATE, pid, -1, (line,)))

    def mem_issue(self, time, pid, tid, msg, addr, latency):
        self._next_txn += 1
        txn = self._next_txn
        self.buffer.append(
            TraceEvent(time, EventKind.MEM_ISSUE, pid, tid, (txn, msg, addr, latency))
        )
        return txn

    def mem_complete(self, time, pid, tid, txn):
        self.buffer.append(TraceEvent(time, EventKind.MEM_COMPLETE, pid, tid, (txn,)))

    def faa_combine(self, time, addr, old, addend):
        self.buffer.append(
            TraceEvent(
                time, EventKind.FAA_COMBINE, MEMORY_SIDE, -1, (addr, old, addend)
            )
        )

    def mem_nack(self, time, pid, tid, txn, attempt, backoff):
        self.buffer.append(
            TraceEvent(time, EventKind.MEM_NACK, pid, tid, (txn, attempt, backoff))
        )

    def mem_retry(self, time, pid, tid, txn, attempt):
        self.buffer.append(
            TraceEvent(time, EventKind.MEM_RETRY, pid, tid, (txn, attempt))
        )

    def faa_replay(self, time, addr, txn):
        self.buffer.append(
            TraceEvent(time, EventKind.FAA_REPLAY, MEMORY_SIDE, -1, (addr, txn))
        )

    def component_degrade(self, time, component, stage):
        self.buffer.append(
            TraceEvent(
                time, EventKind.COMPONENT_DEGRADE, MEMORY_SIDE, -1,
                (component, stage),
            )
        )

    def component_fail(self, time, component):
        self.buffer.append(
            TraceEvent(time, EventKind.COMPONENT_FAIL, MEMORY_SIDE, -1, (component,))
        )

    def component_repair(self, time, component):
        self.buffer.append(
            TraceEvent(time, EventKind.COMPONENT_REPAIR, MEMORY_SIDE, -1, (component,))
        )
