"""Counters and histograms: the aggregate view of observability.

A :class:`MetricsRegistry` is a flat, named collection of
:class:`Counter` and :class:`Histogram` instruments.  It is usable
stand-alone (instrument any code, render a report, serialize to JSON)
and has two built-in producers:

* :func:`metrics_from_events` derives latency histograms and event
  counters from a tracer's event stream;
* :meth:`repro.machine.stats.SimStats.to_metrics` exports a finished
  run's statistics, so the same report machinery works with tracing
  completely disabled.

Histograms bucket by powers of two (1, 2, 4, ... upper bounds), which
suits the quantities here — run lengths and memory latencies spread
over orders of magnitude — and keeps ``observe`` cheap
(``bit_length``, no search).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.obs.events import EventKind, TraceEvent


class Counter:
    """A monotonically increasing named count, optionally carrying a set
    of Prometheus-style labels (one Counter per distinct label set)."""

    __slots__ = ("name", "value", "help", "labels")

    def __init__(
        self,
        name: str,
        help: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ):
        self.name = name
        self.value = 0
        self.help = help
        self.labels = dict(labels) if labels else None

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict:
        payload = {"type": "counter", "value": self.value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {labeled_key(self.name, self.labels)}={self.value}>"


class Histogram:
    """Power-of-two-bucketed distribution of non-negative observations.

    Bucket *b* counts observations with ``2**(b-1) < value <= 2**b``;
    exact count/sum/min/max are kept alongside, so means are exact and
    only quantiles are approximate (upper bucket bound — a conservative
    estimate).

    *floor* is the smallest bucket exponent: with the default ``0`` the
    cheapest path applies and every value <= 1 lands in bucket 0 (right
    for integral quantities — cycle counts, run lengths).  A negative
    floor extends the buckets into fractional powers of two (``2**-20``
    ≈ 1µs of seconds), which is what the wall-clock span latency
    histograms use; values at or below ``2**floor`` share the floor
    bucket.

    Like :class:`Counter`, a histogram may carry a Prometheus-style
    label set (one Histogram per distinct label set); labelled series of
    one family share the name and differ only in *labels*.
    """

    __slots__ = (
        "name", "buckets", "count", "total", "min", "max", "help",
        "labels", "floor",
    )

    def __init__(
        self,
        name: str,
        help: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        floor: int = 0,
    ):
        if floor > 0:
            raise ValueError(f"histogram {name!r}: floor must be <= 0")
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.help = help
        self.labels = dict(labels) if labels else None
        self.floor = floor

    def _bucket_for(self, value) -> int:
        if value > 1:
            return (math.ceil(value) - 1).bit_length()
        if self.floor == 0 or value <= 0:
            return self.floor
        # 0 < value <= 1 with fractional buckets: frexp gives the exact
        # power-of-two bound without the log2 rounding hazards.
        mantissa, exponent = math.frexp(value)
        bucket = exponent - 1 if mantissa == 0.5 else exponent
        return bucket if bucket > self.floor else self.floor

    def observe(self, value) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r}: negative value {value}")
        bucket = self._bucket_for(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the *q*-quantile from the bucket
        boundaries: the smallest bucket bound below which at least
        ``q * count`` observations fall, clamped by the exact observed
        maximum (so ``quantile(1.0) == max``).  ``0.0`` when empty."""
        if not self.count:
            return 0.0
        threshold = q * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= threshold:
                return min(float(2 ** bucket), float(self.max))
        return float(self.max)

    def percentile(self, fraction: float) -> float:
        """Upper bucket bound below which *fraction* of observations fall
        (conservative; exact min/max are reported separately).  Prefer
        :meth:`quantile`, which additionally clamps by the observed max."""
        if not self.count:
            return 0.0
        threshold = fraction * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= threshold:
                return float(2 ** bucket)
        return float(self.max)

    def to_dict(self) -> Dict:
        payload = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(2 ** b): n for b, n in sorted(self.buckets.items())},
        }
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.1f}>"


class Gauge:
    """A named value that can go up and down (uptime, build info)."""

    __slots__ = ("name", "value", "help", "labels")

    def __init__(
        self,
        name: str,
        help: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ):
        self.name = name
        self.value = 0.0
        self.help = help
        self.labels = dict(labels) if labels else None

    def set(self, value) -> None:
        self.value = value

    def to_dict(self) -> Dict:
        payload = {"type": "gauge", "value": self.value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {labeled_key(self.name, self.labels)}={self.value}>"


class MetricsRegistry:
    """Named collection of instruments with one creation point per name."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def counter(
        self,
        name: str,
        help: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Counter:
        """One counter per (name, label set) — labelled series of one
        family share the name and differ only in *labels*."""
        key = labeled_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Counter(name, help, labels)
        elif not isinstance(instrument, Counter):
            raise TypeError(f"{key!r} is already a {type(instrument).__name__}")
        return instrument

    def histogram(
        self,
        name: str,
        help: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        floor: int = 0,
    ) -> Histogram:
        key = labeled_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Histogram(
                name, help, labels, floor
            )
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{key!r} is already a {type(instrument).__name__}")
        return instrument

    def gauge(
        self,
        name: str,
        help: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Gauge:
        key = labeled_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Gauge(name, help, labels)
        elif not isinstance(instrument, Gauge):
            raise TypeError(f"{key!r} is already a {type(instrument).__name__}")
        return instrument

    def __iter__(self):
        return iter(sorted(self._instruments.items()))

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def to_dict(self) -> Dict:
        return {name: instrument.to_dict() for name, instrument in self}

    def render(self) -> str:
        """Aligned text report (the ``repro-trace`` metrics view)."""
        lines: List[str] = []
        counters = [
            (name, inst) for name, inst in self if isinstance(inst, Counter)
        ]
        gauges = [
            (name, inst) for name, inst in self if isinstance(inst, Gauge)
        ]
        histograms = [
            (name, inst) for name, inst in self if isinstance(inst, Histogram)
        ]
        if counters:
            width = max(len(name) for name, _ in counters)
            lines.append("counters:")
            for name, counter in counters:
                lines.append(f"  {name:<{width}}  {counter.value:>12,}")
        if gauges:
            width = max(len(name) for name, _ in gauges)
            lines.append("gauges:" if not lines else "\ngauges:")
            for name, gauge in gauges:
                lines.append(f"  {name:<{width}}  {gauge.value:>12,}")
        if histograms:
            width = max(len(name) for name, _ in histograms)
            lines.append("histograms:" if not lines else "\nhistograms:")
            header = (
                f"  {'name':<{width}}  {'count':>10} {'mean':>10} "
                f"{'p50':>8} {'p95':>8} {'max':>10}"
            )
            lines.append(header)
            for name, hist in histograms:
                lines.append(
                    f"  {name:<{width}}  {hist.count:>10,} {hist.mean:>10.1f} "
                    f"{hist.percentile(0.5):>8.0f} {hist.percentile(0.95):>8.0f} "
                    f"{(hist.max if hist.max is not None else 0):>10,.0f}"
                )
        return "\n".join(lines) if lines else "(no metrics)"

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every instrument.

        Counters render as ``<name>_total``; histograms render as native
        Prometheus histograms with cumulative power-of-two ``le`` buckets
        plus ``_sum``/``_count``.  Instrument names are sanitized to the
        Prometheus grammar (``.`` and other invalid characters become
        ``_``), ``# HELP`` lines are emitted for instruments created with
        help text, and output order follows the registry's sorted
        iteration — stable across runs, so scrapes diff cleanly.
        """
        lines: List[str] = []
        emitted_families = set()

        def family_header(name: str, kind: str, help_text) -> None:
            # TYPE/HELP belong to the family: emit once even when many
            # labelled series share the name.
            if name in emitted_families:
                return
            emitted_families.add(name)
            if help_text:
                lines.append(f"# HELP {name} {escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")

        for _name, instrument in self:
            rendered_labels = _render_labels(instrument.labels)
            if isinstance(instrument, Counter):
                name = prometheus_name(instrument.name)
                if not name.endswith("_total"):
                    name += "_total"
                family_header(name, "counter", instrument.help)
                label_part = "{" + rendered_labels + "}" if rendered_labels else ""
                lines.append(
                    f"{name}{label_part} {_format_value(instrument.value)}"
                )
            elif isinstance(instrument, Gauge):
                name = prometheus_name(instrument.name)
                family_header(name, "gauge", instrument.help)
                label_part = "{" + rendered_labels + "}" if rendered_labels else ""
                lines.append(
                    f"{name}{label_part} {_format_value(instrument.value)}"
                )
            else:
                name = prometheus_name(instrument.name)
                family_header(name, "histogram", instrument.help)
                prefix = rendered_labels + "," if rendered_labels else ""
                label_part = "{" + rendered_labels + "}" if rendered_labels else ""
                cumulative = 0
                for bucket in sorted(instrument.buckets):
                    cumulative += instrument.buckets[bucket]
                    bound = escape_label_value(str(2 ** bucket))
                    lines.append(
                        f'{name}_bucket{{{prefix}le="{bound}"}} {cumulative}'
                    )
                lines.append(
                    f'{name}_bucket{{{prefix}le="+Inf"}} {instrument.count}'
                )
                lines.append(
                    f"{name}_sum{label_part} {_format_value(instrument.total)}"
                )
                lines.append(f"{name}_count{label_part} {instrument.count}")
        return "\n".join(lines) + "\n" if lines else ""


def _render_labels(labels: Optional[Dict[str, str]]) -> str:
    """Prometheus label pairs (``k="v",...``) sorted by key, or ``""``."""
    if not labels:
        return ""
    return ",".join(
        f'{prometheus_name(key)}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )


def labeled_key(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """Registry key of a (possibly labelled) series:
    ``name{k="v",...}`` with labels sorted, or just ``name``."""
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{rendered}}}"


def prometheus_name(name: str) -> str:
    """*name* mapped onto the Prometheus metric-name grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``): invalid characters become ``_`` and
    a leading digit gains a ``_`` prefix."""
    sanitized = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_"
        for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string (backslash and newline, per the
    exposition-format spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value (backslash, double quote, newline)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    """Render a sample value: integers stay integral, floats use repr
    (shortest round-trippable form)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


#: (event kind -> counter name) for the simple tallies.
_EVENT_COUNTERS = {
    EventKind.INSTR: "instr",
    EventKind.SWITCH_TAKEN: "switch.taken",
    EventKind.SWITCH_SKIPPED: "switch.skipped",
    EventKind.SWITCH_FORCED: "switch.forced",
    EventKind.CACHE_HIT: "cache.hit",
    EventKind.CACHE_MISS: "cache.miss",
    EventKind.CACHE_MERGE: "cache.merge",
    EventKind.CACHE_EVICT: "cache.evict",
    EventKind.INVALIDATE: "invalidate",
    EventKind.FAA_COMBINE: "faa.combine",
    EventKind.THREAD_HALT: "thread.halt",
    EventKind.MEM_NACK: "mem.nack",
    EventKind.MEM_RETRY: "mem.retry",
    EventKind.FAA_REPLAY: "faa.replay",
    EventKind.COMPONENT_DEGRADE: "component.degrade",
    EventKind.COMPONENT_FAIL: "component.fail",
    EventKind.COMPONENT_REPAIR: "component.repair",
}


def metrics_from_events(
    events: Iterable[TraceEvent], registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Derive the standard metrics view of a trace.

    Produces one counter per event kind, per-message-kind issue counters
    (``mem.issue.<kind>``), a latency histogram per message kind
    (``mem.latency.<kind>``) and a burst-length histogram.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for event in events:
        kind = event.kind
        name = _EVENT_COUNTERS.get(kind)
        if name is not None:
            registry.counter(name).inc()
        elif kind is EventKind.MEM_ISSUE:
            _txn, msg, _addr, latency = event.data
            registry.counter(f"mem.issue.{msg}").inc()
            registry.histogram(f"mem.latency.{msg}").observe(latency)
        elif kind is EventKind.BURST:
            end, _outcome = event.data
            registry.histogram("burst.cycles").observe(max(0, end - event.time))
    return registry
