"""``repro.obs`` — observability: tracing, metrics, run logs.

Three independent layers, cheapest first:

* **engine telemetry** (always on when a result cache is configured):
  one JSONL line per run under the cache directory — wall time, cache
  source, worker id, peak RSS (:mod:`repro.obs.runlog`);
* **metrics** (:class:`MetricsRegistry`): counters + histograms, usable
  on their own or derived from a finished run's
  :meth:`~repro.machine.stats.SimStats.to_metrics`;
* **cycle-level tracing** (:class:`RingTracer`): typed, cycle-stamped
  events from every probe point in the machine, exportable as a Chrome
  ``trace_event`` file for Perfetto (:mod:`repro.obs.chrome`), a JSONL
  dump, an ASCII timeline (:mod:`repro.tools.timeline`) or a metrics
  report — four views of one event stream.

Quickstart::

    from repro import simulate
    from repro.obs import RingTracer, write_chrome_trace

    tracer = RingTracer()
    result = simulate("sieve", model="explicit-switch", processors=2,
                      level=4, scale="tiny", tracer=tracer)
    write_chrome_trace("trace.json", tracer.events(), tracer.dropped)

With tracing disabled (the default) the simulator's hot paths pay a
single attribute check — see ``benchmarks/bench_tracer_overhead.py``.
"""

from repro.obs.events import (
    EventKind,
    RingBuffer,
    TraceEvent,
    bursts,
    event_to_record,
    read_events_jsonl,
    record_to_event,
    write_events_jsonl,
)
from repro.obs.tracer import NullTracer, RingTracer, TimelineTracer, Tracer
from repro.obs.chrome import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_events,
    prometheus_name,
)
from repro.obs.runlog import (
    RunLogWriter,
    read_runlog,
    render_runlog_report,
    summarize_runlog,
)
from repro.obs.spans import (
    NullSpanRecorder,
    Span,
    SpanContext,
    SpanRecorder,
    merge_chrome_traces,
    read_spans_jsonl,
    render_span_report,
    render_span_tree,
    spans_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "EventKind",
    "TraceEvent",
    "RingBuffer",
    "bursts",
    "event_to_record",
    "record_to_event",
    "write_events_jsonl",
    "read_events_jsonl",
    "Tracer",
    "NullTracer",
    "RingTracer",
    "TimelineTracer",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_from_events",
    "prometheus_name",
    "RunLogWriter",
    "read_runlog",
    "summarize_runlog",
    "render_runlog_report",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "NullSpanRecorder",
    "read_spans_jsonl",
    "write_spans_jsonl",
    "render_span_report",
    "render_span_tree",
    "spans_chrome_trace",
    "merge_chrome_traces",
]
