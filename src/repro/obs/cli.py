"""``repro-trace`` — record and inspect cycle-level traces.

Examples::

    repro-trace run sieve --model eswitch --out trace.json
    repro-trace run sor --model som --processors 4 --level 8 \\
        --scale small --events events.jsonl --timeline
    repro-trace report ~/.cache/repro/runlog.jsonl
    repro-trace spans ~/.cache/repro/spans.jsonl --tree

``run`` simulates one configuration with a :class:`~repro.obs.tracer.
RingTracer` attached and writes a Chrome ``trace_event`` file — open it
at https://ui.perfetto.dev.  ``--events`` additionally dumps the raw
event stream as JSONL; ``--metrics`` / ``--timeline`` print the derived
aggregate views on stdout.  ``report`` summarizes an engine run log
(where it lives is printed by ``repro-bench`` on exit).  ``spans``
summarizes a wall-clock span log recorded by ``repro-serve serve
--spans`` — per-stage latency quantiles, per-trace trees, and a Chrome
trace export that ``--merge`` can splice with a simulated-cycle trace
into one Perfetto view.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness.cliargs import add_spec_arguments, spec_from_args
from repro.obs.chrome import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.events import write_events_jsonl
from repro.obs.metrics import metrics_from_events
from repro.obs.runlog import read_runlog, render_runlog_report
from repro.obs.spans import (
    merge_chrome_traces,
    read_spans_jsonl,
    render_span_report,
    render_span_tree,
    spans_chrome_trace,
)
from repro.obs.tracer import RingTracer


def _cmd_run(args) -> int:
    from repro.api import simulate
    from repro.tools.timeline import render_timeline

    try:
        spec = spec_from_args(args)
    except ValueError as error:
        print(f"repro-trace: {error}", file=sys.stderr)
        return 2
    tracer = RingTracer(capacity=args.capacity)
    result = simulate(
        spec.app,
        model=spec.switch_model,
        processors=spec.processors,
        level=spec.level,
        scale=spec.scale,
        latency=spec.effective_latency,
        tracer=tracer,
        backend=spec.backend,
        **dict(spec.overrides),
    )
    if args.check:
        from repro.check import check_result

        check_result(result, label=f"{spec.app}/{spec.model}")
        print("[trace] invariant check passed", file=sys.stderr)
    events = tracer.events()
    document = chrome_trace(events, tracer.dropped)
    validate_chrome_trace(document)
    write_chrome_trace(args.out, events, tracer.dropped)
    print(
        f"[trace] {spec.app}/{spec.model}: {result.wall_cycles:,} cycles, "
        f"{tracer.total_events:,} events ({tracer.dropped:,} dropped) "
        f"-> {args.out}",
        file=sys.stderr,
    )
    if args.events:
        count = write_events_jsonl(args.events, events)
        print(f"[trace] wrote {count:,} events -> {args.events}", file=sys.stderr)
    if args.timeline:
        print(render_timeline(events, args.processors))
    if args.metrics:
        print(metrics_from_events(events).render())
    return 0


def _cmd_spans(args) -> int:
    try:
        spans = read_spans_jsonl(args.spanlog)
    except OSError as error:
        print(f"repro-trace: {error}", file=sys.stderr)
        return 2
    if args.trace:
        spans = [
            span for span in spans if span.trace_id.startswith(args.trace)
        ]
    if args.chrome:
        document = spans_chrome_trace(spans)
        if args.merge:
            try:
                with open(args.merge, "r", encoding="utf-8") as handle:
                    other = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                print(f"repro-trace: cannot merge {args.merge}: {error}",
                      file=sys.stderr)
                return 2
            document = merge_chrome_traces(other, document)
        validate_chrome_trace(document)
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        print(
            f"[spans] wrote Chrome trace ({len(document['traceEvents']):,} "
            f"events) -> {args.chrome}",
            file=sys.stderr,
        )
    print(render_span_tree(spans) if args.tree else render_span_report(spans))
    return 0


def _cmd_report(args) -> int:
    try:
        entries = read_runlog(args.runlog)
    except OSError as error:
        print(f"repro-trace: {error}", file=sys.stderr)
        return 2
    print(render_runlog_report(entries))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Record Chrome traces of simulations; report engine run logs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="simulate one config with tracing on")
    add_spec_arguments(run)
    run.add_argument(
        "--out", default="trace.json", metavar="PATH", help="Chrome trace output"
    )
    run.add_argument(
        "--events", default=None, metavar="PATH", help="also dump raw events as JSONL"
    )
    run.add_argument(
        "--capacity",
        type=int,
        default=1_000_000,
        help="ring-buffer capacity in events (oldest dropped beyond this)",
    )
    run.add_argument(
        "--timeline", action="store_true", help="print the ASCII occupancy timeline"
    )
    run.add_argument(
        "--metrics", action="store_true", help="print the derived metrics report"
    )
    run.set_defaults(func=_cmd_run)

    report = commands.add_parser("report", help="summarize an engine run log")
    report.add_argument("runlog", help="path to runlog.jsonl")
    report.set_defaults(func=_cmd_report)

    spans = commands.add_parser(
        "spans", help="summarize a wall-clock span log (repro-serve --spans)"
    )
    spans.add_argument("spanlog", help="path to spans.jsonl")
    spans.add_argument(
        "--tree",
        action="store_true",
        help="print per-trace span trees instead of the stage-latency table",
    )
    spans.add_argument(
        "--trace",
        default=None,
        metavar="ID",
        help="restrict to one trace (id or unique prefix)",
    )
    spans.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="also write the spans as a Chrome trace_event file",
    )
    spans.add_argument(
        "--merge",
        default=None,
        metavar="TRACE",
        help="splice an existing (cycle) Chrome trace into --chrome output",
    )
    spans.set_defaults(func=_cmd_spans)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro-trace report ... | head`
        sys.stderr.close()  # suppress the interpreter's own pipe warning
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
