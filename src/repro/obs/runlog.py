"""Engine run log: one JSONL line per completed/cached/failed run.

The :class:`~repro.engine.executor.Engine` appends an entry for every
spec it resolves (except in-process memo hits, which touch nothing) to a
``runlog.jsonl`` under the result-cache directory.  Entries carry what
you need to debug a sweep after the fact — which worker ran what, how
long it took, whether it came from cache, how big the worker got:

.. code-block:: json

    {"ts": 1754515200.1, "spec": "sieve/switch-on-load P2 M4 L200 (small)",
     "key": "5b3c...", "app": "sieve", "model": "switch-on-load",
     "source": "run", "elapsed": 1.932, "worker": 71002,
     "peak_rss_kb": 48812, "wall_cycles": 731442}

``repro-trace report <runlog>`` renders the aggregate view.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional


def peak_rss_kb() -> Optional[int]:
    """Peak resident-set size of this process in KiB (``None`` where the
    ``resource`` module is unavailable, e.g. Windows)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return usage // 1024
    return usage


class RunLogWriter:
    """Append-only JSONL writer (one flush per entry, crash-tolerant)."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.entries_written = 0

    def append(self, entry: Dict) -> None:
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._handle.flush()
        self.entries_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_runlog(path) -> List[Dict]:
    """Parse a run log; unreadable lines are skipped (a crashed writer
    leaves at most one torn line at the end)."""
    entries: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return entries


def summarize_runlog(entries: List[Dict]) -> Dict:
    """Aggregate a run log into the quantities the report prints."""
    from repro.obs.metrics import Histogram

    by_source: Dict[str, int] = {}
    by_worker: Dict[int, int] = {}
    elapsed_total = 0.0
    # floor -20 = 2**-20 s buckets (~1µs), the same resolution the span
    # stage histograms use.
    elapsed_hist = Histogram("elapsed", floor=-20)
    slowest: List[Dict] = []
    failures: List[Dict] = []
    peak_rss = None
    cycles = 0
    for entry in entries:
        by_source[entry.get("source", "?")] = (
            by_source.get(entry.get("source", "?"), 0) + 1
        )
        worker = entry.get("worker")
        if worker is not None:
            by_worker[worker] = by_worker.get(worker, 0) + 1
        elapsed = float(entry.get("elapsed", 0.0))
        elapsed_total += elapsed
        elapsed_hist.observe(max(0.0, elapsed))
        rss = entry.get("peak_rss_kb")
        if rss is not None and (peak_rss is None or rss > peak_rss):
            peak_rss = rss
        cycles += entry.get("wall_cycles") or 0
        if entry.get("source") == "failed":
            failures.append(entry)
        slowest.append(entry)
    slowest.sort(key=lambda e: float(e.get("elapsed", 0.0)), reverse=True)
    return {
        "entries": len(entries),
        "by_source": by_source,
        "by_worker": by_worker,
        "elapsed_total": elapsed_total,
        "elapsed_quantiles": {
            "p50": elapsed_hist.quantile(0.5),
            "p95": elapsed_hist.quantile(0.95),
            "p99": elapsed_hist.quantile(0.99),
        },
        "simulated_cycles": cycles,
        "peak_rss_kb": peak_rss,
        "failures": failures,
        "slowest": slowest[:10],
    }


def render_runlog_report(entries: List[Dict]) -> str:
    """Human-readable run-log summary (the ``repro-trace report`` view)."""
    if not entries:
        return "(empty run log)"
    summary = summarize_runlog(entries)
    parts = [
        f"{summary['entries']} entries, "
        + ", ".join(
            f"{count} {source}" for source, count in sorted(summary["by_source"].items())
        ),
        f"run time {summary['elapsed_total']:.2f}s across "
        f"{len(summary['by_worker']) or 1} worker(s), "
        f"{summary['simulated_cycles']:,} simulated cycles",
        "elapsed p50/p95/p99 "
        + "/".join(
            f"{summary['elapsed_quantiles'][q]:.3f}s"
            for q in ("p50", "p95", "p99")
        ),
    ]
    if summary["peak_rss_kb"] is not None:
        parts.append(f"peak worker RSS {summary['peak_rss_kb'] / 1024:.0f} MiB")
    lines = parts + ["", "slowest runs:"]
    for entry in summary["slowest"]:
        lines.append(
            f"  {float(entry.get('elapsed', 0.0)):8.2f}s  "
            f"[{entry.get('source', '?'):>6}]  {entry.get('spec', '?')}"
        )
    if summary["failures"]:
        lines.append("")
        lines.append("failures:")
        for entry in summary["failures"]:
            error = entry.get("error") or {}
            lines.append(
                f"  {entry.get('spec', '?')}: "
                f"{error.get('type', '?')}: {error.get('message', '')}"
            )
    return "\n".join(lines)


def default_entry(**fields) -> Dict:
    """An entry skeleton stamped with the caller's pid (the engine fills
    source/spec/timing fields on top)."""
    entry = {"worker": os.getpid()}
    entry.update(fields)
    return entry
