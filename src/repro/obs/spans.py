"""Wall-clock span tracing across the service stack.

Where :mod:`repro.obs.tracer` answers "where did the *cycles* go inside
one simulation", this module answers "where did the *seconds* go between
a client pressing submit and the result coming back" — the same
latency-attribution question the paper's switch-model taxonomy asks at
the instruction level, lifted to the service level.

A :class:`Span` is one named stage of work — ``trace_id`` / ``span_id``
/ ``parent_id`` identity, wall-clock start/end, a status and free-form
attributes.  Spans of one request share a trace id, which is carried
across layers (client → HTTP → scheduler → engine → worker process) as
a W3C ``traceparent`` string, so a served job yields one tree::

    client-submit
      http                      POST /v1/jobs handling
        admit                   admission-control decision
        queue-wait              admitted -> picked up by the worker thread
        execute                 the engine.run_many call
          cache-lookup          memo + disk-cache probe (per spec)
          dispatch              pool submit -> payload collected
            simulate            worker-side execution (crosses the
              build               ProcessPoolExecutor boundary)
              jit-compile         compiled-backend codegen (accumulated)
              run                 the simulation proper
          deserialize           SimulationResult.from_dict
        serialize               result payloads built
        journal                 finish record flushed

The :class:`SpanRecorder` has the same disabled-overhead contract as
:class:`~repro.obs.tracer.Tracer`: instrumented layers normalise a
recorder whose ``enabled`` flag is false to ``None`` (see
:func:`active`), so with recording off every probe site pays one local
load plus one ``is not None`` check and emitted byte streams stay
identical (``benchmarks/bench_span_overhead.py`` bounds the cost).

Finished spans export three ways:

* **JSONL** — one record per line via :class:`~repro.obs.runlog.
  RunLogWriter` (crash-tolerant; :func:`read_spans_jsonl` skips torn
  tails);
* **Chrome trace_event** — :func:`spans_chrome_trace` renders wall-clock
  tracks that :func:`merge_chrome_traces` can splice into a
  simulated-cycle trace from :mod:`repro.obs.chrome`, one Perfetto view
  over both clocks;
* **metrics** — every finished span's duration lands in the
  ``serve.stage_seconds`` histogram family (one labelled series per
  stage), scraped at ``/metrics`` and summarised by ``repro-trace
  spans``.
"""

from __future__ import annotations

import collections
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import RunLogWriter, read_runlog

#: Histogram family every finished span's duration is observed into
#: (one labelled series per ``stage`` = span name).
STAGE_HISTOGRAM = "serve.stage_seconds"

#: Bucket floor for the stage histograms: 2**-20 s ≈ 1µs resolution.
STAGE_FLOOR = -20

#: Help text the labelled family is registered with.
STAGE_HELP = "Wall-clock seconds spent per pipeline stage"


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


class SpanContext(NamedTuple):
    """What crosses a boundary: the trace and the parent span within it."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header) -> Optional["SpanContext"]:
        """Parse a ``traceparent`` value; ``None`` for anything that is
        not a well-formed version-00 header (never raises — a bad header
        from a foreign client must not fail the request)."""
        if not isinstance(header, str):
            return None
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, _flags = parts
        if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
            return None
        try:
            int(trace_id, 16), int(span_id, 16)
        except ValueError:
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id, span_id)


class Span:
    """One named stage of wall-clock work within a trace."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "start", "end",
        "status", "attributes",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        start: Optional[float] = None,
        attributes: Optional[Dict] = None,
    ):
        self.name = name
        self.trace_id = trace_id or new_trace_id()
        self.span_id = span_id or new_span_id()
        self.parent_id = parent_id
        self.start = time.time() if start is None else start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attributes: Optional[Dict] = dict(attributes) if attributes else None

    @property
    def context(self) -> SpanContext:
        """The context a child span (or a wire header) parents under."""
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while unfinished)."""
        return max(0.0, self.end - self.start) if self.end is not None else 0.0

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; returns the span."""
        if self.attributes is None:
            self.attributes = {}
        self.attributes.update(attributes)
        return self

    def finish(self, status: str = "ok") -> "Span":
        """Stamp the end time (idempotent — the first finish wins)."""
        if self.end is None:
            self.end = time.time()
            self.status = status
        return self

    def to_dict(self) -> Dict:
        record = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attributes:
            record["attrs"] = dict(self.attributes)
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "Span":
        span = cls(
            record["name"],
            trace_id=record["trace"],
            parent_id=record.get("parent"),
            span_id=record["span"],
            start=float(record["start"]),
            attributes=record.get("attrs"),
        )
        end = record.get("end")
        span.end = float(end) if end is not None else None
        span.status = record.get("status", "ok")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} {self.trace_id[:8]}/{self.span_id[:8]} "
            f"{self.duration * 1e3:.2f}ms {self.status}>"
        )


def active(recorder) -> Optional["SpanRecorder"]:
    """Normalise a recorder for the hot-path contract: a recorder whose
    ``enabled`` flag is false becomes ``None``, so instrumented layers
    only ever test ``recorder is not None`` (mirrors how the simulator
    treats disabled tracers)."""
    if recorder is not None and recorder.enabled:
        return recorder
    return None


class SpanRecorder:
    """Collects finished spans; optionally mirrors them to a JSONL log
    and a :class:`MetricsRegistry` stage-latency histogram family.

    Thread-safe: request handlers, the scheduler worker thread and the
    engine all record into one instance.

    :param capacity: finished spans retained in memory (oldest dropped
        first, counted in :attr:`dropped`); ``None`` keeps everything.
    :param metrics: registry receiving ``serve.stage_seconds{stage=...}``
        observations per finished span (``None`` = no metrics fold).
    :param log: path of a JSONL span log appended to as spans finish
        (``None`` = in-memory only).
    """

    enabled = True

    def __init__(
        self,
        capacity: Optional[int] = 100_000,
        metrics: Optional[MetricsRegistry] = None,
        log=None,
    ):
        self._spans: collections.deque = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.metrics = metrics
        self.log_path = log
        self._writer: Optional[RunLogWriter] = None
        self.dropped = 0
        self.recorded = 0

    # -- span lifecycle --------------------------------------------------------

    def start(
        self,
        name: str,
        parent=None,
        start: Optional[float] = None,
        attributes: Optional[Dict] = None,
    ) -> Span:
        """Open a span.  *parent* may be a :class:`Span`, a
        :class:`SpanContext`, a ``(trace_id, span_id)`` tuple, or
        ``None`` (a new root trace).  *start* backdates the span (used
        for queue-wait, whose start is the admission instant)."""
        trace_id = parent_id = None
        if parent is not None:
            if isinstance(parent, Span):
                trace_id, parent_id = parent.trace_id, parent.span_id
            else:  # SpanContext or a plain (trace_id, span_id) tuple
                trace_id, parent_id = parent[0], parent[1]
        return Span(
            name, trace_id=trace_id, parent_id=parent_id, start=start,
            attributes=attributes,
        )

    def finish(self, span: Span, status: str = "ok") -> Span:
        """Stamp the span's end and record it."""
        span.finish(status)
        self.record(span)
        return span

    @contextmanager
    def span(self, name: str, parent=None, attributes: Optional[Dict] = None):
        """``with recorder.span("stage", parent=ctx) as s:`` — finishes
        with status ``error`` when the body raises."""
        span = self.start(name, parent=parent, attributes=attributes)
        try:
            yield span
        except BaseException:
            self.finish(span, status="error")
            raise
        self.finish(span)

    # -- sinks -----------------------------------------------------------------

    def record(self, span: Span) -> None:
        """Fold one finished span into memory, metrics and the log."""
        with self._lock:
            if (
                self._spans.maxlen is not None
                and len(self._spans) == self._spans.maxlen
            ):
                self.dropped += 1
            self._spans.append(span)
            self.recorded += 1
            if self.metrics is not None and span.end is not None:
                self.metrics.histogram(
                    STAGE_HISTOGRAM,
                    help=STAGE_HELP,
                    labels={"stage": span.name},
                    floor=STAGE_FLOOR,
                ).observe(span.duration)
            if self.log_path is not None:
                try:
                    if self._writer is None:
                        self._writer = RunLogWriter(self.log_path)
                    self._writer.append(span.to_dict())
                except OSError:  # pragma: no cover - disk full etc.
                    self.log_path = None

    def absorb(self, records: Iterable[Dict]) -> int:
        """Record span dictionaries produced elsewhere (worker processes
        return theirs inside the result payload); malformed records are
        skipped.  Returns the number absorbed."""
        count = 0
        for record in records:
            try:
                span = Span.from_dict(record)
            except (KeyError, TypeError, ValueError):
                continue
            self.record(span)
            count += 1
        return count

    # -- access ----------------------------------------------------------------

    def spans(self) -> List[Span]:
        """Retained finished spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def close(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None


class NullSpanRecorder(SpanRecorder):
    """A recorder that is switched off: :func:`active` maps it to
    ``None``, so instrumented layers skip every probe."""

    enabled = False


# -- JSONL ---------------------------------------------------------------------


def write_spans_jsonl(path, spans: Iterable[Span]) -> int:
    """Dump *spans* to *path*, one JSON record per line; returns the
    number written.  Inverse: :func:`read_spans_jsonl`."""
    import json

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_spans_jsonl(path) -> List[Span]:
    """Load a span log.  Torn or malformed lines are skipped (a crashed
    writer leaves at most one torn line at the end), mirroring
    :func:`~repro.obs.runlog.read_runlog`."""
    spans: List[Span] = []
    for record in read_runlog(path):
        try:
            spans.append(Span.from_dict(record))
        except (KeyError, TypeError, ValueError):
            continue
    return spans


# -- Chrome export -------------------------------------------------------------

#: Trace-file process id of the wall-clock track — far above simulated
#: processors (0..N) and the memory side (1_000_000), so the service
#: tracks sort last in a merged Perfetto view.
WALL_CLOCK_PID = 2_000_000


def spans_chrome_events(
    spans: Iterable[Span], origin: Optional[float] = None
) -> List[Dict]:
    """Chrome ``trace_event`` entries for *spans*: one wall-clock track
    (process ``service (wall clock)``), one thread lane per trace, every
    span a complete (``"X"``) slice.  1µs of trace time = 1µs of wall
    clock, measured from *origin* (default: the earliest span start), so
    the entries coexist with the 1-cycle-=-1µs simulated tracks from
    :func:`repro.obs.chrome.chrome_trace` in one viewer session."""
    spans = [span for span in spans if span.end is not None]
    if not spans:
        return []
    if origin is None:
        origin = min(span.start for span in spans)
    lanes: Dict[str, int] = {}
    entries: List[Dict] = [
        {
            "name": "process_name", "ph": "M", "pid": WALL_CLOCK_PID,
            "args": {"name": "service (wall clock)"},
        },
        {
            "name": "process_sort_index", "ph": "M", "pid": WALL_CLOCK_PID,
            "args": {"sort_index": WALL_CLOCK_PID},
        },
    ]
    for span in sorted(spans, key=lambda s: s.start):
        lane = lanes.get(span.trace_id)
        if lane is None:
            lane = lanes[span.trace_id] = len(lanes)
            entries.append(
                {
                    "name": "thread_name", "ph": "M", "pid": WALL_CLOCK_PID,
                    "tid": lane,
                    "args": {"name": f"trace {span.trace_id[:8]}"},
                }
            )
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
        }
        if span.attributes:
            args.update(span.attributes)
        entries.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "pid": WALL_CLOCK_PID,
                "tid": lane,
                "ts": max(0.0, (span.start - origin) * 1e6),
                "dur": span.duration * 1e6,
                "args": args,
            }
        )
    return entries


def spans_chrome_trace(spans: Iterable[Span]) -> Dict:
    """A complete Chrome trace document holding only the wall-clock
    span tracks (merge with a cycle trace via
    :func:`merge_chrome_traces`)."""
    spans = list(spans)
    return {
        "traceEvents": spans_chrome_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.spans",
            "clock": "1us trace time = 1us wall clock",
            "spans": sum(1 for span in spans if span.end is not None),
        },
    }


def merge_chrome_traces(*documents: Dict) -> Dict:
    """Splice several Chrome trace documents into one: ``traceEvents``
    concatenated, ``otherData`` merged (later documents win on key
    clashes).  This is how the simulated-cycle tracks and the wall-clock
    span tracks land in a single Perfetto view."""
    events: List[Dict] = []
    other: Dict = {}
    for document in documents:
        events.extend(document.get("traceEvents", []))
        other.update(document.get("otherData", {}))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


# -- reports -------------------------------------------------------------------


def stage_histograms(spans: Iterable[Span]) -> "collections.OrderedDict":
    """Per-stage latency histograms (stage = span name, first-seen
    order) over the finished spans of a log."""
    from repro.obs.metrics import Histogram

    stages: "collections.OrderedDict[str, Histogram]" = collections.OrderedDict()
    for span in spans:
        if span.end is None:
            continue
        hist = stages.get(span.name)
        if hist is None:
            hist = stages[span.name] = Histogram(span.name, floor=STAGE_FLOOR)
        hist.observe(span.duration)
    return stages


def render_span_report(spans: List[Span]) -> str:
    """The ``repro-trace spans`` per-stage latency table: count, mean
    and p50/p95/p99 upper-bound quantiles (milliseconds) per stage."""
    stages = stage_histograms(spans)
    if not stages:
        return "(no finished spans)"
    traces = {span.trace_id for span in spans}
    errors = sum(1 for span in spans if span.status != "ok")
    width = max(max(len(name) for name in stages), len("stage"))
    lines = [
        f"{len(spans)} spans across {len(traces)} trace(s)"
        + (f", {errors} error(s)" if errors else ""),
        "",
        f"  {'stage':<{width}}  {'count':>7} {'mean ms':>9} "
        f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'max ms':>9}",
    ]
    for name, hist in stages.items():
        lines.append(
            f"  {name:<{width}}  {hist.count:>7,} {hist.mean * 1e3:>9.2f} "
            f"{hist.quantile(0.5) * 1e3:>9.2f} "
            f"{hist.quantile(0.95) * 1e3:>9.2f} "
            f"{hist.quantile(0.99) * 1e3:>9.2f} "
            f"{(hist.max or 0.0) * 1e3:>9.2f}"
        )
    return "\n".join(lines)


def render_span_tree(
    spans: List[Span], trace_id: Optional[str] = None
) -> str:
    """An indented per-trace tree of spans (durations in ms).  Spans
    whose parent is not in the log (e.g. the client kept its own
    recorder) root at their trace."""
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        if trace_id is None or span.trace_id == trace_id:
            by_trace.setdefault(span.trace_id, []).append(span)
    if not by_trace:
        return "(no matching spans)"
    lines: List[str] = []
    for tid, members in by_trace.items():
        lines.append(f"trace {tid}")
        ids = {span.span_id for span in members}
        children: Dict[Optional[str], List[Span]] = {}
        for span in members:
            parent = span.parent_id if span.parent_id in ids else None
            children.setdefault(parent, []).append(span)

        def walk(parent: Optional[str], depth: int) -> None:
            for span in sorted(
                children.get(parent, []), key=lambda s: s.start
            ):
                flag = "" if span.status == "ok" else f" [{span.status}]"
                lines.append(
                    f"  {'  ' * depth}{span.name:<24} "
                    f"{span.duration * 1e3:>9.2f} ms{flag}"
                )
                walk(span.span_id, depth + 1)

        walk(None, 0)
    return "\n".join(lines)
