"""The typed event vocabulary of the tracing layer.

Every probe point in the machine emits one :class:`TraceEvent` — a small
named tuple ``(time, kind, pid, tid, data)`` where *time* is the
simulated cycle, *pid*/*tid* locate the processor and hardware thread
(``-1`` = the shared-memory side, which belongs to no processor) and
*data* is a per-kind payload tuple (schemas below, and in DESIGN §5c).

Event kinds and payloads:

=================  ============================================================
kind               data
=================  ============================================================
INSTR              ``(pc, op)`` — one instruction executed at cycle *time*
                   (HALTs appear here but are excluded from the
                   retired-instruction statistic)
BURST              ``(end, outcome)`` — processor ran *tid* from *time*
                   to *end* (outcome codes from :mod:`repro.machine.processor`)
SWITCH_TAKEN       ``(resume,)`` — context switch taken; thread resumes at
                   *resume*
SWITCH_SKIPPED     ``()`` — conditional SWITCH fell through (nothing pending)
SWITCH_FORCED      ``()`` — the forced-interval starvation guard fired
MEM_ISSUE          ``(txn, kind, addr, latency)`` — transaction *txn* of
                   message kind *kind* (a :class:`~repro.machine.network.
                   MsgKind` name) issued; completes at ``time + latency``
MEM_COMPLETE       ``(txn,)`` — transaction *txn*'s response delivered
CACHE_HIT          ``(addr,)``
CACHE_MISS         ``(addr,)``
CACHE_MERGE        ``(addr,)`` — miss merged onto an in-flight fill (MSHR)
CACHE_EVICT        ``(line,)`` — capacity eviction installing a new line
FAA_COMBINE        ``(addr, old, addend)`` — Fetch-and-Add applied at memory
INVALIDATE         ``(line,)`` — directory invalidated *pid*'s copy of *line*
THREAD_HALT        ``()`` — thread *tid* executed HALT
MEM_NACK           ``(txn, attempt, backoff)`` — transaction *txn*'s reply was
                   lost; the processor backs off *backoff* cycles before retry
MEM_RETRY          ``(txn, attempt)`` — retry attempt *attempt* of transaction
                   *txn* reissued (followed by a fresh MEM_ISSUE)
FAA_REPLAY         ``(addr, txn)`` — a retried Fetch-and-Add was answered from
                   the idempotent-replay buffer (not re-applied)
COMPONENT_DEGRADE  ``(component, stage)`` — memory component entered DEGRADED
                   stage *stage* (round trips stretch; see repro.faults.
                   lifecycle)
COMPONENT_FAIL     ``(component,)`` — component failed hard (requests NACKed
                   until it returns to service)
COMPONENT_REPAIR   ``(component,)`` — component finished repairing and
                   returned to HEALTHY service
=================  ============================================================
"""

from __future__ import annotations

import enum
import json
from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple


class EventKind(enum.IntEnum):
    """Discriminator for :class:`TraceEvent` payloads."""

    INSTR = 0
    BURST = 1
    SWITCH_TAKEN = 2
    SWITCH_SKIPPED = 3
    SWITCH_FORCED = 4
    MEM_ISSUE = 5
    MEM_COMPLETE = 6
    CACHE_HIT = 7
    CACHE_MISS = 8
    CACHE_MERGE = 9
    CACHE_EVICT = 10
    FAA_COMBINE = 11
    INVALIDATE = 12
    THREAD_HALT = 13
    MEM_NACK = 14
    MEM_RETRY = 15
    FAA_REPLAY = 16
    COMPONENT_DEGRADE = 17
    COMPONENT_FAIL = 18
    COMPONENT_REPAIR = 19


#: Field names of each kind's ``data`` tuple (drives the JSONL export).
DATA_FIELDS = {
    EventKind.INSTR: ("pc", "op"),
    EventKind.BURST: ("end", "outcome"),
    EventKind.SWITCH_TAKEN: ("resume",),
    EventKind.SWITCH_SKIPPED: (),
    EventKind.SWITCH_FORCED: (),
    EventKind.MEM_ISSUE: ("txn", "msg", "addr", "latency"),
    EventKind.MEM_COMPLETE: ("txn",),
    EventKind.CACHE_HIT: ("addr",),
    EventKind.CACHE_MISS: ("addr",),
    EventKind.CACHE_MERGE: ("addr",),
    EventKind.CACHE_EVICT: ("line",),
    EventKind.FAA_COMBINE: ("addr", "old", "addend"),
    EventKind.INVALIDATE: ("line",),
    EventKind.THREAD_HALT: (),
    EventKind.MEM_NACK: ("txn", "attempt", "backoff"),
    EventKind.MEM_RETRY: ("txn", "attempt"),
    EventKind.FAA_REPLAY: ("addr", "txn"),
    EventKind.COMPONENT_DEGRADE: ("component", "stage"),
    EventKind.COMPONENT_FAIL: ("component",),
    EventKind.COMPONENT_REPAIR: ("component",),
}


class TraceEvent(NamedTuple):
    """One cycle-stamped observation from the machine."""

    time: int
    kind: EventKind
    pid: int
    tid: int
    data: Tuple


#: ``pid`` used for events that happen at the memory/network side.
MEMORY_SIDE = -1


def event_to_record(event: TraceEvent) -> dict:
    """Flatten an event into a JSON-safe dictionary (for the JSONL dump)."""
    record = {
        "t": event.time,
        "kind": event.kind.name,
        "pid": event.pid,
        "tid": event.tid,
    }
    for name, value in zip(DATA_FIELDS[event.kind], event.data):
        record[name] = value
    return record


def record_to_event(record: dict) -> TraceEvent:
    """Inverse of :func:`event_to_record`."""
    kind = EventKind[record["kind"]]
    data = tuple(record[name] for name in DATA_FIELDS[kind])
    return TraceEvent(record["t"], kind, record["pid"], record["tid"], data)


class RingBuffer:
    """Bounded append-only event store.

    Keeps the most recent *capacity* events (``None`` = unbounded) and
    counts how many were dropped, so exporters can report truncation
    instead of silently presenting a partial trace as complete.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None = unbounded)")
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self._start = 0  # ring head when the buffer has wrapped
        self.total = 0

    def append(self, event: TraceEvent) -> None:
        capacity = self.capacity
        self.total += 1
        if capacity is None or len(self._events) < capacity:
            self._events.append(event)
            return
        # Overwrite the oldest slot in place (classic ring).
        self._events[self._start] = event
        self._start = (self._start + 1) % capacity

    @property
    def dropped(self) -> int:
        return self.total - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        events = self._events
        start = self._start
        for index in range(len(events)):
            yield events[(start + index) % len(events)]

    def to_list(self) -> List[TraceEvent]:
        return list(self)

    def clear(self) -> None:
        self._events.clear()
        self._start = 0
        self.total = 0


def write_events_jsonl(path, events: Iterable[TraceEvent]) -> int:
    """Dump *events* to *path*, one JSON record per line; returns the
    number written.  Inverse: :func:`read_events_jsonl`."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event_to_record(event), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_events_jsonl(path) -> List[TraceEvent]:
    """Load a JSONL event dump back into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(record_to_event(json.loads(line)))
    return events


def bursts(events: Iterable[TraceEvent]):
    """Yield ``(start, pid, tid, end, outcome)`` tuples from the BURST
    events of a stream — the shape :mod:`repro.tools.timeline` consumes."""
    for event in events:
        if event.kind is EventKind.BURST:
            yield (event.time, event.pid, event.tid, event.data[0], event.data[1])
