"""Chrome ``trace_event`` export (Perfetto / ``chrome://tracing``).

:func:`chrome_trace` turns a :class:`~repro.obs.tracer.RingTracer` event
stream into the JSON object format of the Trace Event specification:

* one *process* track per simulated processor (plus one for the memory
  side), one *thread* lane per hardware thread;
* every dispatch burst becomes a complete (``"X"``) slice on its
  thread's lane;
* every shared-memory transaction becomes an async begin/end pair
  (``"b"``/``"e"``) with its transaction id, drawn by the viewers as an
  arrow spanning issue → response — in-flight latency is directly
  visible;
* context switches and cache events become instants; cache hit/miss
  running totals become counter (``"C"``) tracks.

One simulated cycle is exported as one microsecond (the formats have no
notion of cycles); ``displayTimeUnit`` is milliseconds, so a 200-cycle
round trip reads as 0.2 on the ruler.

:func:`validate_chrome_trace` is the minimal schema check CI runs
against the emitted file before uploading it as an artifact.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.obs.events import EventKind, MEMORY_SIDE, TraceEvent

#: Burst outcome names (codes from :mod:`repro.machine.processor`).
OUTCOME_NAMES = {0: "switch", 1: "pause", 2: "yield", 3: "halt"}

_INSTANT_NAMES = {
    EventKind.SWITCH_TAKEN: "switch",
    EventKind.SWITCH_SKIPPED: "switch-skipped",
    EventKind.SWITCH_FORCED: "switch-forced",
    EventKind.CACHE_MERGE: "cache-merge",
    EventKind.CACHE_EVICT: "cache-evict",
    EventKind.INVALIDATE: "invalidate",
    EventKind.FAA_COMBINE: "faa-combine",
    EventKind.THREAD_HALT: "halt",
    EventKind.MEM_NACK: "mem-nack",
    EventKind.MEM_RETRY: "mem-retry",
    EventKind.FAA_REPLAY: "faa-replay",
    EventKind.COMPONENT_DEGRADE: "component-degrade",
    EventKind.COMPONENT_FAIL: "component-fail",
    EventKind.COMPONENT_REPAIR: "component-repair",
}

#: Component-lifecycle events get their own category so chaos runs can
#: be filtered to just service transitions in the viewer.
_LIFECYCLE_KINDS = frozenset(
    (
        EventKind.COMPONENT_DEGRADE,
        EventKind.COMPONENT_FAIL,
        EventKind.COMPONENT_REPAIR,
    )
)


def _track_pid(pid: int) -> int:
    """Trace-file process id: real processors keep their pid; the memory
    side gets a large sentinel so it sorts last."""
    return pid if pid >= 0 else 1_000_000


def chrome_trace(events: Iterable[TraceEvent], dropped: int = 0) -> Dict:
    """Build the Chrome trace JSON object for *events*.

    *dropped* (from ``RingTracer.dropped``) is recorded in ``otherData``
    so a truncated ring is never mistaken for a complete trace.
    """
    events = list(events)
    trace: List[Dict] = []
    seen_procs = set()
    seen_threads = set()
    completes: Dict[int, int] = {}
    cache_counters: Dict[int, Dict[str, int]] = {}

    for event in events:
        if event.kind is EventKind.MEM_COMPLETE:
            completes[event.data[0]] = event.time

    def track(pid: int, tid: int) -> Dict:
        tpid = _track_pid(pid)
        if tpid not in seen_procs:
            seen_procs.add(tpid)
            name = f"processor {pid}" if pid >= 0 else "memory"
            trace.append(
                {"name": "process_name", "ph": "M", "pid": tpid,
                 "args": {"name": name}}
            )
            trace.append(
                {"name": "process_sort_index", "ph": "M", "pid": tpid,
                 "args": {"sort_index": tpid}}
            )
        if tid >= 0 and (tpid, tid) not in seen_threads:
            seen_threads.add((tpid, tid))
            trace.append(
                {"name": "thread_name", "ph": "M", "pid": tpid, "tid": tid,
                 "args": {"name": f"thread {tid}"}}
            )
        return {"pid": tpid, "tid": tid if tid >= 0 else 0}

    for event in events:
        kind = event.kind
        where = track(event.pid, event.tid)
        if kind is EventKind.BURST:
            end, outcome = event.data
            trace.append(
                {
                    "name": f"thread {event.tid}",
                    "cat": "burst",
                    "ph": "X",
                    "ts": event.time,
                    "dur": max(0, end - event.time),
                    "args": {"outcome": OUTCOME_NAMES.get(outcome, str(outcome))},
                    **where,
                }
            )
        elif kind is EventKind.MEM_ISSUE:
            txn, msg, addr, latency = event.data
            end = completes.get(txn, event.time + latency)
            common = {"cat": "mem", "id": txn, "name": msg, **where}
            trace.append(
                {
                    "ph": "b",
                    "ts": event.time,
                    "args": {"addr": addr, "latency": latency},
                    **common,
                }
            )
            trace.append({"ph": "e", "ts": end, "args": {}, **common})
        elif kind is EventKind.CACHE_HIT or kind is EventKind.CACHE_MISS:
            counter = cache_counters.setdefault(
                event.pid, {"hits": 0, "misses": 0}
            )
            counter["hits" if kind is EventKind.CACHE_HIT else "misses"] += 1
            trace.append(
                {
                    "name": "cache",
                    "cat": "cache",
                    "ph": "C",
                    "ts": event.time,
                    "pid": where["pid"],
                    "args": dict(counter),
                }
            )
        elif kind in _INSTANT_NAMES:
            trace.append(
                {
                    "name": _INSTANT_NAMES[kind],
                    "cat": (
                        "lifecycle"
                        if kind in _LIFECYCLE_KINDS
                        else "sched" if kind.name.startswith("SWITCH") else "mem"
                    ),
                    "ph": "i",
                    "ts": event.time,
                    "s": "t" if event.tid >= 0 else "p",
                    **where,
                }
            )
        # INSTR / MEM_COMPLETE events are folded into slices/arrows above.

    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock": "1 simulated cycle = 1us",
            "events": len(events),
            "dropped": dropped,
        },
    }


def write_chrome_trace(path, events: Iterable[TraceEvent], dropped: int = 0) -> Dict:
    """Write :func:`chrome_trace` output to *path*; returns the document."""
    document = chrome_trace(events, dropped=dropped)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return document


#: Phases that require a "tid" field per the trace-event spec subset we emit.
_THREAD_PHASES = {"X", "b", "e", "i"}


def validate_chrome_trace(document) -> None:
    """Minimal structural validation of a trace document (raises
    ``ValueError`` on the first violation).  This is the schema gate the
    CI trace-smoke job applies before uploading the artifact."""
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    trace = document.get("traceEvents")
    if not isinstance(trace, list) or not trace:
        raise ValueError("traceEvents must be a non-empty list")
    open_async = {}
    for index, entry in enumerate(trace):
        if not isinstance(entry, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        phase = entry.get("ph")
        if phase not in ("M", "X", "b", "e", "i", "C"):
            raise ValueError(f"traceEvents[{index}] has unknown phase {phase!r}")
        if not isinstance(entry.get("pid"), int):
            raise ValueError(f"traceEvents[{index}] lacks an integer pid")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            raise ValueError(f"traceEvents[{index}] lacks a name")
        if phase != "M":
            ts = entry.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"traceEvents[{index}] lacks a valid ts")
        if phase in _THREAD_PHASES and not isinstance(entry.get("tid"), int):
            raise ValueError(f"traceEvents[{index}] lacks an integer tid")
        if phase == "X":
            duration = entry.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(f"traceEvents[{index}] has invalid dur")
        if phase == "b":
            open_async[(entry.get("cat"), entry.get("id"))] = index
        if phase == "e":
            if open_async.pop((entry.get("cat"), entry.get("id")), None) is None:
                raise ValueError(
                    f"traceEvents[{index}] ends async id {entry.get('id')!r} "
                    "that was never begun"
                )
    if open_async:
        raise ValueError(f"{len(open_async)} async events never ended")
