"""Stateful component lifecycles: degradation, failure and repair.

Each component (a memory module / interconnect link; addresses map to a
component by ``addr % components``) walks the cycle

    HEALTHY -> DEGRADED(1) .. DEGRADED(k) -> FAILED -> REPAIRING -> HEALTHY

forever.  Segment durations are splitmix64 draws keyed on ``(seed,
component, epoch, phase)``, so the whole transition schedule — and
therefore the component's state at any cycle — is a pure function of the
:class:`~repro.faults.config.LifecycleConfig`.  That is the property the
replay / backend-equivalence checks in :mod:`repro.check` rely on: no
simulator state feeds back into the schedule, so worker count, cache
state and execution backend cannot perturb it.

Service semantics, from the simulator's point of view:

* DEGRADED stage *s* stretches the round trip of requests *issued*
  while degraded: ``rt' = rt * (1 + s*(scale-1)) + s*shift``.
* FAILED / REPAIRING components NACK every request that *arrives* while
  they are down — the reply is dropped into the existing NACK/retry
  protocol, and the NACK carries a deterministic retry-after hint (the
  scheduled recovery cycle) so retries land after the outage instead of
  burning the attempt budget.

Durations are integer draws uniform in ``[1, 2*mean - 1]`` (mean =
``mean``), all integer arithmetic — bit-identical on every platform.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults.config import FaultConfig, LifecycleConfig
from repro.faults.rng import bounded

#: Component service states, in walk order.
HEALTHY = 0
DEGRADED = 1
FAILED = 2
REPAIRING = 3

STATE_NAMES = ("HEALTHY", "DEGRADED", "FAILED", "REPAIRING")

#: Domain-separation tags: the four phase durations of one epoch are
#: independent draws (DEGRADED adds the stage number to its tag).
_HEALTHY_TAG = 0x11EA
_DEGRADED_TAG = 0x2DE6
_FAILED_TAG = 0x3FA1
_REPAIR_TAG = 0x4E9A


def _duration(mean: int, *key: int) -> int:
    """Deterministic phase duration: uniform in ``[1, 2*mean - 1]``
    (mean *mean*), or 1 when the mean is degenerate."""
    if mean <= 1:
        return 1
    return 1 + bounded(2 * mean - 2, *key)


class LifecyclePlan:
    """Lazily materialised transition schedules for every component.

    The schedule for a component is a pair of parallel lists — segment
    start cycles and ``(state, stage)`` codes — extended epoch by epoch
    on demand.  Extension is monotone and query-order independent:
    asking about cycle *t* materialises exactly the epochs up to *t*,
    and every draw depends only on ``(seed, component, epoch, phase)``.
    """

    __slots__ = (
        "config",
        "static",
        "_affected",
        "_times",
        "_states",
        "_epochs",
        "_horizons",
    )

    def __init__(self, config: LifecycleConfig):
        self.config = config
        #: A static plan never leaves HEALTHY — the simulator keeps its
        #: fast delivery paths and only availability stats are reported.
        self.static = not config.active
        n = config.components
        self._affected = [config.is_affected(comp) for comp in range(n)]
        self._times: List[List[int]] = [[0] for _ in range(n)]
        self._states: List[List[Tuple[int, int]]] = [[(HEALTHY, 0)] for _ in range(n)]
        self._epochs = [0] * n
        #: First cycle not covered by the materialised schedule (the
        #: start of the next epoch's HEALTHY segment).
        self._horizons = [0] * n

    # -- schedule construction -------------------------------------------------

    def component(self, addr: int) -> int:
        """The component serving address (or cache line) *addr*."""
        return addr % self.config.components

    def _extend_epoch(self, comp: int) -> None:
        cfg = self.config
        epoch = self._epochs[comp]
        times, states = self._times[comp], self._states[comp]
        t = self._horizons[comp]
        t += _duration(cfg.mean_healthy, cfg.seed, comp, epoch, _HEALTHY_TAG)
        for stage in range(1, cfg.degrade_stages + 1):
            times.append(t)
            states.append((DEGRADED, stage))
            t += _duration(
                cfg.mean_degraded, cfg.seed, comp, epoch, _DEGRADED_TAG + stage
            )
        times.append(t)
        states.append((FAILED, 0))
        t += _duration(cfg.mean_failed, cfg.seed, comp, epoch, _FAILED_TAG)
        times.append(t)
        states.append((REPAIRING, 0))
        t += _duration(cfg.mean_repair, cfg.seed, comp, epoch, _REPAIR_TAG)
        times.append(t)
        states.append((HEALTHY, 0))
        self._epochs[comp] = epoch + 1
        self._horizons[comp] = t

    def _ensure(self, comp: int, time: int) -> None:
        if self._affected[comp]:
            while self._horizons[comp] <= time:
                self._extend_epoch(comp)

    # -- queries ---------------------------------------------------------------

    def state_at(self, comp: int, time: int) -> Tuple[int, int]:
        """``(state, stage)`` of *comp* at cycle *time* (stage is 0
        outside DEGRADED)."""
        if not self._affected[comp]:
            return (HEALTHY, 0)
        self._ensure(comp, time)
        index = bisect_right(self._times[comp], time) - 1
        return self._states[comp][index]

    def stretch(self, rt: int, addr: int, time: int) -> int:
        """The round trip for a request to *addr* issued at *time*,
        stretched if its component is degraded."""
        if self.static:
            return rt
        state, stage = self.state_at(self.component(addr), time)
        if state == DEGRADED:
            cfg = self.config
            rt = int(rt * (1.0 + stage * (cfg.degraded_scale - 1.0)))
            rt += stage * cfg.degraded_shift
        return rt

    def outage_until(self, addr: int, time: int) -> int:
        """0 when the component serving *addr* is up at *time*; else the
        absolute cycle at which it returns to HEALTHY (the deterministic
        retry-after hint carried by outage NACKs)."""
        if self.static:
            return 0
        comp = self.component(addr)
        state, _ = self.state_at(comp, time)
        if state != FAILED and state != REPAIRING:
            return 0
        times, states = self._times[comp], self._states[comp]
        index = bisect_right(times, time) - 1
        while True:
            index += 1
            if index >= len(times):
                return self._horizons[comp]
            if states[index][0] == HEALTHY:
                return times[index]

    # -- post-run accounting ---------------------------------------------------

    def transitions(self, limit: int) -> Iterator[Tuple[int, int, int, int]]:
        """Every transition in ``(0, limit)``, ordered by (time,
        component): ``(time, component, state, stage)``.  The open upper
        bound matches :meth:`availability`, which accounts the interval
        ``[0, limit)`` — transition trace events and the failure/repair
        counters in the stats agree by construction."""
        events = []
        for comp in range(self.config.components):
            if not self._affected[comp]:
                continue
            if limit > 0:
                self._ensure(comp, limit - 1)
            times, states = self._times[comp], self._states[comp]
            for index in range(1, len(times)):
                if times[index] >= limit:
                    break
                state, stage = states[index]
                events.append((times[index], comp, state, stage))
        return iter(sorted(events))

    def availability(self, wall: int) -> List[Dict[str, int]]:
        """Per-component availability ledger over ``[0, wall)``: every
        cycle is attributed to exactly one of uptime / downtime /
        repair (degraded cycles are a subset of uptime), so
        ``uptime + downtime + repair == wall`` — the conservation law
        :func:`repro.check.invariants.result_problems` enforces."""
        ledger = []
        for comp in range(self.config.components):
            uptime = degraded = downtime = repair = 0
            failures = repairs = 0
            if self._affected[comp] and wall > 0:
                self._ensure(comp, wall - 1)
            times, states = self._times[comp], self._states[comp]
            for index, start in enumerate(times):
                if start >= wall:
                    break
                end = times[index + 1] if index + 1 < len(times) else wall
                span = min(end, wall) - start
                state, _stage = states[index]
                if state == FAILED:
                    downtime += span
                elif state == REPAIRING:
                    repair += span
                else:
                    uptime += span
                    if state == DEGRADED:
                        degraded += span
                if index > 0:
                    if state == FAILED:
                        failures += 1
                    elif state == HEALTHY:
                        repairs += 1
            if not self._affected[comp]:
                uptime = wall
            ledger.append(
                {
                    "component": comp,
                    "uptime_cycles": uptime,
                    "degraded_cycles": degraded,
                    "downtime_cycles": downtime,
                    "repair_cycles": repair,
                    "failures": failures,
                    "repairs": repairs,
                }
            )
        return ledger


def build_lifecycle_plan(
    config: Optional[FaultConfig],
) -> Optional[LifecyclePlan]:
    """Instantiate the plan, or ``None`` when no lifecycle is
    configured.  Inactive lifecycles still get a (static) plan so the
    availability ledger is reported; only *active* ones force the
    simulator's faulty delivery paths."""
    if config is None or config.lifecycle is None:
        return None
    return LifecyclePlan(config.lifecycle)
