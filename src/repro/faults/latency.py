"""Pluggable round-trip latency models.

A latency model answers one question: *how many cycles does this
value-returning transaction's round trip take?*  The simulator calls
``round_trip(time, addr)`` once per issue (and once per retry reissue).
Models are deterministic — either stateless hashes of ``(seed, time,
addr)`` or, for the hot-spot queue, state updated in simulator event
order, which is itself deterministic.

``constant`` is special-cased: :func:`build_latency_model` returns
``None`` for it, and the simulator keeps its original arithmetic
(``latency + legacy jitter``) — the zero-perturbation fast path.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.faults.config import FaultConfig
from repro.faults.rng import bounded, unit


class LatencyModel:
    """Base class; subclasses define :meth:`round_trip`."""

    name = "abstract"

    def round_trip(self, time: int, addr: int) -> int:
        """Round-trip cycles for a transaction issued at *time* to *addr*."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """The paper's model: every round trip takes exactly *base* cycles.

    Provided for completeness (e.g. composing models in tests); the
    simulator's fast path never instantiates it.
    """

    name = "constant"

    def __init__(self, base: int):
        self.base = base

    def round_trip(self, time: int, addr: int) -> int:
        return self.base


class UniformJitterLatency(LatencyModel):
    """``base + U[0, jitter]``, hashed from ``(seed, time, addr)``."""

    name = "uniform"

    def __init__(self, base: int, jitter: int, seed: int):
        self.base = base
        self.jitter = jitter
        self.seed = seed

    def round_trip(self, time: int, addr: int) -> int:
        return self.base + bounded(self.jitter, self.seed, time, addr, 0x301)


class GeometricJitterLatency(LatencyModel):
    """``base + G`` where ``G`` is geometric with mean *jitter*.

    A heavy-ish tail (occasional much-slower round trips) — the shape
    congested multistage networks actually show.  The draw is capped at
    ``16 * jitter`` so a single unlucky hash cannot stall a run beyond
    the simulation's timeout.
    """

    name = "geometric"

    def __init__(self, base: int, jitter: int, seed: int):
        self.base = base
        self.jitter = max(1, jitter)
        self.seed = seed
        # P(success) giving mean (1-p)/p == jitter.
        self._log_q = math.log1p(-1.0 / (self.jitter + 1))

    def round_trip(self, time: int, addr: int) -> int:
        u = unit(self.seed, time, addr, 0x607)
        extra = int(math.log1p(-u) / self._log_q) if u > 0.0 else 0
        return self.base + min(extra, 16 * self.jitter)


class HotSpotLatency(LatencyModel):
    """Contention queue at each of *modules* interleaved memory modules.

    Each request occupies its module (``addr % modules``) for *service*
    cycles starting when it arrives (``time + base/2``); a request
    finding the module busy queues behind it.  Concentrated traffic — a
    shared counter, a hot row — therefore stretches round trips, while
    well-spread traffic pays only the service time.  State evolves in
    simulator event order, so runs stay deterministic.
    """

    name = "hotspot"

    def __init__(self, base: int, modules: int, service: int):
        self.base = base
        self.half = base // 2
        self.service = service
        self.modules = modules
        self._busy_until: List[int] = [0] * modules

    def round_trip(self, time: int, addr: int) -> int:
        arrival = time + self.half
        module = addr % self.modules
        start = self._busy_until[module]
        if start < arrival:
            start = arrival
        self._busy_until[module] = start + self.service
        return self.base + (start - arrival) + self.service


def build_latency_model(
    config: FaultConfig, base_latency: int
) -> Optional[LatencyModel]:
    """Instantiate the configured model, or ``None`` for ``constant``
    (the simulator then keeps its original, bit-exact arithmetic)."""
    name = config.latency_model
    if name == "constant":
        return None
    if name == "uniform":
        return UniformJitterLatency(base_latency, config.jitter, config.seed)
    if name == "geometric":
        return GeometricJitterLatency(base_latency, config.jitter, config.seed)
    if name == "hotspot":
        return HotSpotLatency(
            base_latency, config.hotspot_modules, config.hotspot_service
        )
    raise ValueError(f"unknown latency model {name!r}")  # pragma: no cover
