"""Shared command-line surface for fault injection.

``repro-bench``, ``repro-trace`` and ``repro-serve submit`` expose the
same fault flags (``--latency-model``, ``--fault-rate``, ``--fault-seed``,
``--fault-jitter``, ``--check``) plus the component-lifecycle group
(``--lifecycle-components`` and friends); this module keeps their
spelling, defaults and FaultConfig translation in one place.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.faults.config import LATENCY_MODELS, FaultConfig, LifecycleConfig


def add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the fault-injection flags on *parser*."""
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--latency-model",
        default="constant",
        choices=LATENCY_MODELS,
        help="round-trip latency model (default: constant, the paper's)",
    )
    group.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability each memory reply is dropped in flight; "
        "dropped replies are NACKed and retried with capped "
        "exponential backoff (default: 0)",
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for every fault/latency draw — the same seed "
        "reproduces the same run bit for bit (default: 0)",
    )
    group.add_argument(
        "--fault-jitter",
        type=int,
        default=None,
        metavar="CYCLES",
        help="jitter magnitude for the uniform/geometric latency models "
        "(default: half the base latency)",
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="run the repro.check invariant oracle on every result "
        "(transaction conservation, NACK/retry accounting, clean halts, "
        "availability conservation)",
    )
    chaos = parser.add_argument_group(
        "component lifecycles (chaos scenarios)",
        "seed-deterministic HEALTHY→DEGRADED→FAILED→REPAIRING walks per "
        "memory component; see DESIGN §5i",
    )
    chaos.add_argument(
        "--lifecycle-components",
        type=int,
        default=0,
        metavar="N",
        help="number of interleaved memory components walking lifecycles "
        "(default: 0 = lifecycles off)",
    )
    chaos.add_argument(
        "--lifecycle-affected",
        type=int,
        default=None,
        metavar="K",
        help="components that actually degrade (ids 0..K-1; default: all)",
    )
    chaos.add_argument(
        "--lifecycle-mean-healthy",
        type=int,
        default=20_000,
        metavar="CYCLES",
        help="mean healthy time before degrading (default: 20000; "
        "0 = never degrade, availability stats only)",
    )
    chaos.add_argument(
        "--lifecycle-mean-degraded",
        type=int,
        default=4_000,
        metavar="CYCLES",
        help="mean time per degraded stage (default: 4000)",
    )
    chaos.add_argument(
        "--lifecycle-mean-failed",
        type=int,
        default=1_000,
        metavar="CYCLES",
        help="mean hard-failure time, every request NACKed (default: 1000)",
    )
    chaos.add_argument(
        "--lifecycle-mean-repair",
        type=int,
        default=2_000,
        metavar="CYCLES",
        help="mean repair time before returning to service (default: 2000)",
    )
    chaos.add_argument(
        "--lifecycle-stages",
        type=int,
        default=1,
        metavar="K",
        help="degraded stages walked before the hard failure (default: 1)",
    )
    chaos.add_argument(
        "--lifecycle-scale",
        type=float,
        default=1.5,
        metavar="X",
        help="round-trip multiplier per degraded stage (default: 1.5)",
    )
    chaos.add_argument(
        "--lifecycle-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the transition schedules (default: 0)",
    )


def lifecycle_config_from_args(args) -> Optional[LifecycleConfig]:
    """The :class:`LifecycleConfig` the parsed *args* describe, or
    ``None`` when ``--lifecycle-components`` was left at 0."""
    components = getattr(args, "lifecycle_components", 0)
    if components <= 0:
        return None
    return LifecycleConfig(
        components=components,
        seed=args.lifecycle_seed,
        mean_healthy=args.lifecycle_mean_healthy,
        mean_degraded=args.lifecycle_mean_degraded,
        mean_failed=args.lifecycle_mean_failed,
        mean_repair=args.lifecycle_mean_repair,
        degrade_stages=args.lifecycle_stages,
        degraded_scale=args.lifecycle_scale,
        affected=args.lifecycle_affected,
    )


def fault_config_from_args(args, base_latency: int) -> Optional[FaultConfig]:
    """The :class:`FaultConfig` the parsed *args* describe, or ``None``
    when they leave the machine unperturbed (constant latency, no loss,
    no lifecycles)."""
    lifecycle = lifecycle_config_from_args(args)
    if (
        args.latency_model == "constant"
        and args.fault_rate <= 0.0
        and lifecycle is None
    ):
        return None
    jitter = args.fault_jitter
    if jitter is None and args.latency_model != "constant":
        jitter = max(1, base_latency // 2)
    return FaultConfig(
        latency_model=args.latency_model,
        jitter=jitter if jitter is not None else 0,
        seed=args.fault_seed,
        loss_rate=args.fault_rate,
        lifecycle=lifecycle,
    )
