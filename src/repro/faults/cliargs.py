"""Shared command-line surface for fault injection.

``repro-bench`` and ``repro-trace`` expose the same four flags
(``--latency-model``, ``--fault-rate``, ``--fault-seed``, ``--check``)
plus ``--fault-jitter``; this module keeps their spelling, defaults and
FaultConfig translation in one place.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.faults.config import LATENCY_MODELS, FaultConfig


def add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the fault-injection flags on *parser*."""
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--latency-model",
        default="constant",
        choices=LATENCY_MODELS,
        help="round-trip latency model (default: constant, the paper's)",
    )
    group.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability each memory reply is dropped in flight; "
        "dropped replies are NACKed and retried with capped "
        "exponential backoff (default: 0)",
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for every fault/latency draw — the same seed "
        "reproduces the same run bit for bit (default: 0)",
    )
    group.add_argument(
        "--fault-jitter",
        type=int,
        default=None,
        metavar="CYCLES",
        help="jitter magnitude for the uniform/geometric latency models "
        "(default: half the base latency)",
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="run the repro.check invariant oracle on every result "
        "(transaction conservation, NACK/retry accounting, clean halts)",
    )


def fault_config_from_args(args, base_latency: int) -> Optional[FaultConfig]:
    """The :class:`FaultConfig` the parsed *args* describe, or ``None``
    when they leave the machine unperturbed (constant latency, no loss)."""
    if args.latency_model == "constant" and args.fault_rate <= 0.0:
        return None
    jitter = args.fault_jitter
    if jitter is None:
        jitter = max(1, base_latency // 2)
    return FaultConfig(
        latency_model=args.latency_model,
        jitter=jitter,
        seed=args.fault_seed,
        loss_rate=args.fault_rate,
    )
