"""The frozen description of one fault-injection scenario.

Kept dependency-free (no imports from :mod:`repro.machine`) so the
machine layer can import it without cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

#: Recognised round-trip latency model names (see
#: :mod:`repro.faults.latency`).
LATENCY_MODELS = ("constant", "uniform", "geometric", "hotspot")


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Seeded-deterministic network misbehaviour for one machine.

    The default instance is *inert*: ``latency_model="constant"`` with
    zero loss/delay rates reproduces the plain machine bit for bit (the
    simulator then installs no latency model and no fault plan, so the
    hot paths are untouched).  Requests are still delivered reliably and
    in order — faults apply to the *return* leg of value-returning
    transactions (READ/READ2/FAA/LINE_READ), which is where the paper's
    latency-tolerance argument lives; fire-and-forget stores have no
    reply to lose.
    """

    #: Round-trip latency model: ``constant`` (the paper), ``uniform``
    #: (``latency + U[0, jitter]``), ``geometric`` (``latency + G`` with
    #: mean ``jitter``, capped), or ``hotspot`` (a service queue per
    #: memory module; contended modules stretch the round trip).
    latency_model: str = "constant"
    #: Jitter magnitude in cycles (uniform bound / geometric mean).
    jitter: int = 0
    #: Seed for every hashed decision (latency draws, loss, delay).
    seed: int = 0
    #: Probability that one reply is dropped in flight (NACK + retry).
    loss_rate: float = 0.0
    #: Probability that one reply is delayed (but still delivered).
    delay_rate: float = 0.0
    #: Maximum extra cycles a delayed reply can take (drawn uniformly
    #: from ``[1, delay_cycles]``).
    delay_cycles: int = 64
    #: Retry budget per transaction before the processor gives up
    #: (:class:`~repro.faults.plan.RetryLimitExceeded`).
    max_retries: int = 16
    #: Backoff before retry *n* is ``min(backoff_base << (n-1),
    #: backoff_cap)`` cycles — capped exponential.
    backoff_base: int = 8
    backoff_cap: int = 1024
    #: Hot-spot model shape: number of interleaved memory modules and
    #: the per-request service occupancy of a module, in cycles.
    hotspot_modules: int = 16
    hotspot_service: int = 4

    def __post_init__(self) -> None:
        if self.latency_model not in LATENCY_MODELS:
            raise ValueError(
                f"unknown latency model {self.latency_model!r} "
                f"(choose from {', '.join(LATENCY_MODELS)})"
            )
        for name in ("loss_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.delay_cycles < 1:
            raise ValueError("delay_cycles must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff_base < 1 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_cap")
        if self.hotspot_modules < 1 or self.hotspot_service < 1:
            raise ValueError("hotspot_modules and hotspot_service must be >= 1")

    # -- derived ---------------------------------------------------------------

    @property
    def injects_faults(self) -> bool:
        """Whether any reply can be lost or delayed."""
        return self.loss_rate > 0.0 or self.delay_rate > 0.0

    @property
    def perturbs_latency(self) -> bool:
        """Whether the round trip deviates from the constant model."""
        return self.latency_model != "constant"

    @property
    def inert(self) -> bool:
        """An inert config must behave exactly like ``faults=None``."""
        return not (self.injects_faults or self.perturbs_latency)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})
