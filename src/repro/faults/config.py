"""The frozen description of one fault-injection scenario.

Kept dependency-free (no imports from :mod:`repro.machine`) so the
machine layer can import it without cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

#: Recognised round-trip latency model names (see
#: :mod:`repro.faults.latency`).
LATENCY_MODELS = ("constant", "uniform", "geometric", "hotspot")


@dataclasses.dataclass(frozen=True)
class LifecycleConfig:
    """Seed-deterministic degradation-and-repair lifecycles for the
    machine's memory modules / interconnect links.

    Each of ``components`` interleaved components (addresses map to a
    component by ``addr % components``) walks HEALTHY → DEGRADED (one or
    more stages, each stretching the round trip) → FAILED (every request
    is NACKed) → REPAIRING → HEALTHY, on a cycle-stamped transition
    schedule derived from splitmix64 draws — the full trajectory is a
    pure function of ``(seed, component)``, independent of event order,
    worker count and backend (see :mod:`repro.faults.lifecycle`).

    ``mean_healthy=0`` makes the lifecycle *inert*: components are
    configured (availability stats are reported) but never leave
    HEALTHY, so the simulated behaviour matches a lifecycle-free run.
    """

    #: Number of interleaved components the address space maps onto.
    components: int = 4
    #: Seed for every transition-duration draw.
    seed: int = 0
    #: Mean cycles spent HEALTHY before degrading (0 = never degrade).
    mean_healthy: int = 20_000
    #: Mean cycles per DEGRADED stage.
    mean_degraded: int = 4_000
    #: Mean cycles spent hard-FAILED (all requests NACKed).
    mean_failed: int = 1_000
    #: Mean cycles spent REPAIRING (still down) before returning.
    mean_repair: int = 2_000
    #: DEGRADED stages walked before the hard failure.
    degrade_stages: int = 1
    #: Round-trip multiplier at degraded stage *s* is
    #: ``1 + s*(degraded_scale - 1)``.
    degraded_scale: float = 1.5
    #: Additional flat cycles per degraded stage.
    degraded_shift: int = 0
    #: How many components actually walk the lifecycle (ids ``0 ..
    #: affected-1``); ``None`` = all of them, ``0`` = none (inert).
    affected: Optional[int] = None

    def __post_init__(self) -> None:
        if self.components < 1:
            raise ValueError("components must be >= 1")
        for name in ("mean_healthy", "mean_degraded", "mean_failed", "mean_repair"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.degrade_stages < 1:
            raise ValueError("degrade_stages must be >= 1")
        if self.degraded_scale < 1.0:
            raise ValueError("degraded_scale must be >= 1.0")
        if self.degraded_shift < 0:
            raise ValueError("degraded_shift must be non-negative")
        if self.affected is not None and not 0 <= self.affected <= self.components:
            raise ValueError("affected must be in [0, components]")

    # -- derived ---------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any component can ever leave HEALTHY."""
        return self.mean_healthy > 0 and (self.affected is None or self.affected > 0)

    def is_affected(self, component: int) -> bool:
        """Whether *component* walks the lifecycle (vs. staying healthy)."""
        if not self.active:
            return False
        return self.affected is None or component < self.affected

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "LifecycleConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Seeded-deterministic network misbehaviour for one machine.

    The default instance is *inert*: ``latency_model="constant"`` with
    zero loss/delay rates reproduces the plain machine bit for bit (the
    simulator then installs no latency model and no fault plan, so the
    hot paths are untouched).  Requests are still delivered reliably and
    in order — faults apply to the *return* leg of value-returning
    transactions (READ/READ2/FAA/LINE_READ), which is where the paper's
    latency-tolerance argument lives; fire-and-forget stores have no
    reply to lose.
    """

    #: Round-trip latency model: ``constant`` (the paper), ``uniform``
    #: (``latency + U[0, jitter]``), ``geometric`` (``latency + G`` with
    #: mean ``jitter``, capped), or ``hotspot`` (a service queue per
    #: memory module; contended modules stretch the round trip).
    latency_model: str = "constant"
    #: Jitter magnitude in cycles (uniform bound / geometric mean).
    jitter: int = 0
    #: Seed for every hashed decision (latency draws, loss, delay).
    seed: int = 0
    #: Probability that one reply is dropped in flight (NACK + retry).
    loss_rate: float = 0.0
    #: Probability that one reply is delayed (but still delivered).
    delay_rate: float = 0.0
    #: Maximum extra cycles a delayed reply can take (drawn uniformly
    #: from ``[1, delay_cycles]``).
    delay_cycles: int = 64
    #: Retry budget per transaction before the processor gives up
    #: (:class:`~repro.faults.plan.RetryLimitExceeded`).
    max_retries: int = 16
    #: Backoff before retry *n* is ``min(backoff_base << (n-1),
    #: backoff_cap)`` cycles — capped exponential.
    backoff_base: int = 8
    backoff_cap: int = 1024
    #: Hot-spot model shape: number of interleaved memory modules and
    #: the per-request service occupancy of a module, in cycles.
    hotspot_modules: int = 16
    hotspot_service: int = 4
    #: Optional stateful degradation-and-repair lifecycles (a
    #: :class:`LifecycleConfig`, or a mapping thereof — lifted here so
    #: JSON round trips rebuild the nested dataclass).
    lifecycle: Optional[LifecycleConfig] = None

    def __post_init__(self) -> None:
        if isinstance(self.lifecycle, dict):
            object.__setattr__(
                self, "lifecycle", LifecycleConfig.from_dict(self.lifecycle)
            )
        if self.lifecycle is not None and not isinstance(
            self.lifecycle, LifecycleConfig
        ):
            raise ValueError("lifecycle must be a LifecycleConfig or mapping")
        if self.latency_model not in LATENCY_MODELS:
            raise ValueError(
                f"unknown latency model {self.latency_model!r} "
                f"(choose from {', '.join(LATENCY_MODELS)})"
            )
        for name in ("loss_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.delay_cycles < 1:
            raise ValueError("delay_cycles must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff_base < 1 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_cap")
        if self.hotspot_modules < 1 or self.hotspot_service < 1:
            raise ValueError("hotspot_modules and hotspot_service must be >= 1")

    # -- derived ---------------------------------------------------------------

    @property
    def injects_faults(self) -> bool:
        """Whether any reply can be lost or delayed."""
        return self.loss_rate > 0.0 or self.delay_rate > 0.0

    @property
    def perturbs_latency(self) -> bool:
        """Whether the round trip deviates from the constant model."""
        return self.latency_model != "constant"

    @property
    def has_lifecycles(self) -> bool:
        """Whether component lifecycles are configured at all (even an
        inactive lifecycle reports availability stats)."""
        return self.lifecycle is not None

    @property
    def drives_lifecycles(self) -> bool:
        """Whether some component can actually degrade or fail — the
        condition that forces the simulator's faulty delivery paths."""
        return self.lifecycle is not None and self.lifecycle.active

    @property
    def inert(self) -> bool:
        """An inert config must behave exactly like ``faults=None``.

        Any configured lifecycle — even one that never transitions —
        breaks inertness, because availability stats are then reported.
        """
        return not (
            self.injects_faults or self.perturbs_latency or self.has_lifecycles
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})
