"""Fault injection: non-ideal network latency models and transient
reply loss/delay for the shared-memory transaction path.

The paper's machine assumes a constant round-trip latency with ordered,
lossless delivery.  This package supplies the knobs to relax each of
those assumptions — deterministically, from a seed — while keeping the
constant-latency, fault-free configuration bit-identical to the plain
machine (see DESIGN §5d):

* :class:`FaultConfig` — the frozen description attached to
  :class:`~repro.machine.config.MachineConfig` (``faults=``);
* :func:`build_latency_model` — pluggable round-trip models
  (constant / uniform jitter / geometric jitter / hot-spot contention);
* :func:`build_fault_plan` — per-transaction reply loss and delayed
  delivery decisions, hashed from ``(seed, transaction, attempt)``;
* :class:`RetryLimitExceeded` — raised when the NACK/retry protocol in
  :class:`~repro.machine.processor.Processor` exhausts its attempt
  budget;
* :class:`LifecycleConfig` / :func:`build_lifecycle_plan` — stateful
  degradation-and-repair lifecycles per memory component (HEALTHY →
  DEGRADED → FAILED → REPAIRING → HEALTHY) with per-component
  availability accounting (see DESIGN §5i).
"""

from repro.faults.config import FaultConfig, LATENCY_MODELS, LifecycleConfig
from repro.faults.lifecycle import (
    DEGRADED,
    FAILED,
    HEALTHY,
    REPAIRING,
    STATE_NAMES,
    LifecyclePlan,
    build_lifecycle_plan,
)
from repro.faults.latency import (
    ConstantLatency,
    GeometricJitterLatency,
    HotSpotLatency,
    LatencyModel,
    UniformJitterLatency,
    build_latency_model,
)
from repro.faults.plan import FaultPlan, RetryLimitExceeded, build_fault_plan

__all__ = [
    "FaultConfig",
    "LifecycleConfig",
    "LifecyclePlan",
    "build_lifecycle_plan",
    "HEALTHY",
    "DEGRADED",
    "FAILED",
    "REPAIRING",
    "STATE_NAMES",
    "LATENCY_MODELS",
    "LatencyModel",
    "ConstantLatency",
    "UniformJitterLatency",
    "GeometricJitterLatency",
    "HotSpotLatency",
    "build_latency_model",
    "FaultPlan",
    "RetryLimitExceeded",
    "build_fault_plan",
]
