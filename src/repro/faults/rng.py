"""Stateless deterministic randomness for fault decisions.

Every draw is a pure function of its inputs (a splitmix64-style mixer),
so fault behaviour is reproducible run to run, independent of event
ordering, worker count, and Python hash randomisation — the property
the golden-replay check in :mod:`repro.check` relies on.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """One splitmix64 output step: a high-quality 64-bit mix."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def hash_u64(*parts: int) -> int:
    """Fold integer *parts* into one well-mixed 64-bit value."""
    state = 0
    for part in parts:
        state = mix64((state + part * _GOLDEN + _GOLDEN) & _MASK)
    return state


def unit(*parts: int) -> float:
    """Deterministic draw in ``[0, 1)`` from the hash of *parts*."""
    return hash_u64(*parts) / float(1 << 64)


def bounded(bound: int, *parts: int) -> int:
    """Deterministic draw in ``[0, bound]`` from the hash of *parts*."""
    if bound <= 0:
        return 0
    return hash_u64(*parts) % (bound + 1)
