"""Per-transaction fault decisions: reply loss and delayed delivery.

A :class:`FaultPlan` is consulted once per reply attempt with the
transaction's fault id (a simulator-local sequence number) and the
attempt number; the verdict is a pure hash of ``(seed, txn, attempt)``,
so the same seed reproduces the same fault pattern regardless of worker
count or event-heap internals.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.faults.config import FaultConfig
from repro.faults.rng import bounded, unit

#: Domain-separation tags so the loss and delay draws of one attempt are
#: independent.
_LOSS_TAG = 0x105E
_DELAY_TAG = 0xDE1A
_DELAY_AMOUNT_TAG = 0xA407


class RetryLimitExceeded(RuntimeError):
    """The NACK/retry protocol exhausted ``FaultConfig.max_retries``
    attempts for one transaction (pathological loss rate)."""


class FaultPlan:
    """Deterministic oracle for the fate of each reply attempt."""

    __slots__ = ("seed", "loss_rate", "delay_rate", "delay_cycles")

    def __init__(
        self, seed: int, loss_rate: float, delay_rate: float, delay_cycles: int
    ):
        self.seed = seed
        self.loss_rate = loss_rate
        self.delay_rate = delay_rate
        self.delay_cycles = delay_cycles

    def reply_fate(self, txn: int, attempt: int) -> Tuple[bool, int]:
        """``(lost, extra_delay)`` for attempt *attempt* of transaction
        *txn*.  ``lost=True`` means the reply vanishes (the issuer will
        NACK and retry); otherwise ``extra_delay`` (possibly 0) cycles
        are added to the delivery time."""
        if self.loss_rate and unit(self.seed, txn, attempt, _LOSS_TAG) < self.loss_rate:
            return True, 0
        if (
            self.delay_rate
            and unit(self.seed, txn, attempt, _DELAY_TAG) < self.delay_rate
        ):
            extra = 1 + bounded(
                self.delay_cycles - 1, self.seed, txn, attempt, _DELAY_AMOUNT_TAG
            )
            return False, extra
        return False, 0


def build_fault_plan(config: FaultConfig) -> Optional[FaultPlan]:
    """Instantiate the plan, or ``None`` when no faults are configured
    (the simulator then keeps its original single-event delivery path).

    An *active* component lifecycle also forces a plan — possibly one
    with zero loss/delay rates — because the lifecycle's outage NACKs
    and degraded-latency stretches live on the faulty delivery paths
    (which is also what keys the compiled backend onto the
    Simulator-method variants, keeping the JIT correct by construction).
    """
    if not config.injects_faults and not config.drives_lifecycles:
        return None
    return FaultPlan(
        config.seed, config.loss_rate, config.delay_rate, config.delay_cycles
    )
